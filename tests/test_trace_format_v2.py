"""Tests for the v2 CRC32-framed trace container, salvage, and TraceWriter."""

import random
import zlib

import pytest

from repro.core.events import ChannelInfo, ChannelTable
from repro.core.mutation import FRAME_REGIONS, corrupt_frame
from repro.core.packets import CyclePacket, scan_packet_prefix
from repro.core.trace_file import (
    DEFAULT_FORMAT_VERSION,
    TraceFile,
    TraceWriter,
)
from repro.errors import ConfigError, TraceFormatError, TraceIntegrityError


def small_table() -> ChannelTable:
    return ChannelTable([
        ChannelInfo(index=0, name="a.req", direction="in",
                    content_bytes=4, payload_bits=32),
        ChannelInfo(index=1, name="a.rsp", direction="out",
                    content_bytes=4, payload_bits=32),
    ])


def small_trace(n_packets: int = 6) -> TraceFile:
    table = small_table()
    packets = []
    for i in range(n_packets):
        packet = CyclePacket(starts=1, ends=2)
        packet.contents[0] = i.to_bytes(4, "little")
        packet.validation[1] = (i * 3).to_bytes(4, "little")
        packets.append(packet)
    return TraceFile.from_packets(table, packets, metadata={"app": "unit"})


class TestRoundTrip:
    def test_default_version_is_v2(self):
        assert DEFAULT_FORMAT_VERSION == 2
        assert small_trace().to_bytes()[:8] == b"VIDITRC2"

    @pytest.mark.parametrize("version", [1, 2])
    @pytest.mark.parametrize("compress", [False, True])
    def test_round_trip_both_versions(self, version, compress):
        trace = small_trace()
        blob = trace.to_bytes(compress=compress, version=version)
        loaded = TraceFile.from_bytes(blob)
        assert loaded.format_version == version
        assert bytes(loaded.body) == bytes(trace.body)
        assert loaded.table.to_dict() == trace.table.to_dict()
        assert loaded.metadata["app"] == "unit"
        assert not loaded.salvaged

    def test_v1_traces_still_load(self, tmp_path):
        """Pre-v2 archives keep working (format-version compatibility)."""
        path = tmp_path / "legacy.trace"
        small_trace().save(path, version=1)
        loaded = TraceFile.load(path)
        assert loaded.format_version == 1
        assert bytes(loaded.body) == bytes(small_trace().body)

    def test_unknown_version_rejected(self):
        with pytest.raises(TraceFormatError):
            small_trace().to_bytes(version=4)


class TestFramingRejections:
    """Short blobs, truncated segments and trailing garbage must all fail
    loudly, for both container versions."""

    @pytest.mark.parametrize("version", [1, 2])
    def test_short_blob(self, version):
        blob = small_trace().to_bytes(version=version)
        for cut in (0, 3, 7):
            with pytest.raises(TraceFormatError):
                TraceFile.from_bytes(blob[:cut])

    def test_bad_magic(self):
        blob = small_trace().to_bytes()
        with pytest.raises(TraceFormatError):
            TraceFile.from_bytes(b"NOTATRCE" + blob[8:])

    @pytest.mark.parametrize("version", [1, 2])
    def test_truncated_header(self, version):
        blob = small_trace().to_bytes(version=version)
        preamble = 16 if version == 1 else 20
        with pytest.raises(TraceFormatError):
            TraceFile.from_bytes(blob[:preamble + 5])

    @pytest.mark.parametrize("version", [1, 2])
    def test_trailing_garbage_rejected(self, version):
        blob = small_trace().to_bytes(version=version)
        with pytest.raises(TraceFormatError):
            TraceFile.from_bytes(blob + b"\x00" * 9)

    def test_v1_truncated_body(self):
        blob = small_trace().to_bytes(version=1)
        with pytest.raises(TraceFormatError):
            TraceFile.from_bytes(blob[:-5])


class TestCrcDetection:
    def test_every_single_byte_flip_detected(self):
        """Exhaustive: no single-byte corruption of a v2 blob loads."""
        trace = small_trace()
        blob = bytearray(trace.to_bytes())
        for position in range(len(blob)):
            blob[position] ^= 0x41
            with pytest.raises(TraceFormatError):
                TraceFile.from_bytes(bytes(blob))
            blob[position] ^= 0x41

    def test_header_corruption_is_integrity_error(self):
        blob = bytearray(small_trace().to_bytes())
        blob[25] ^= 1   # inside the JSON header
        with pytest.raises(TraceIntegrityError):
            TraceFile.from_bytes(bytes(blob))

    def test_body_corruption_is_integrity_error(self):
        blob = bytearray(small_trace().to_bytes())
        blob[-20] ^= 1  # inside the body, near the footer
        with pytest.raises(TraceIntegrityError):
            TraceFile.from_bytes(bytes(blob))

    def test_corrupt_frame_never_silently_accepted(self):
        rng = random.Random(0)
        trace = small_trace()
        blob = trace.to_bytes()
        for i in range(60):
            region = FRAME_REGIONS[i % len(FRAME_REGIONS)]
            _desc, damaged = corrupt_frame(blob, rng, region=region)
            with pytest.raises(TraceFormatError):
                TraceFile.from_bytes(damaged)

    def test_corrupt_frame_needs_v2(self):
        with pytest.raises(ConfigError):
            corrupt_frame(small_trace().to_bytes(version=1),
                          random.Random(0))


class TestSalvage:
    def test_truncation_salvages_packet_prefix(self):
        trace = small_trace(8)
        blob = trace.to_bytes()
        index = trace.index()
        body_start = len(blob) - len(trace.body) - 12
        # Cut in the middle of packet 5's serialized bytes.
        cut = body_start + index.offset_of(5) + 3
        salvaged = TraceFile.from_bytes(blob[:cut], salvage=True)
        assert salvaged.salvaged
        assert salvaged.metadata["salvaged"]["packets"] == 5
        assert bytes(trace.body).startswith(bytes(salvaged.body))
        assert salvaged.packet_count == 5

    def test_interior_corruption_salvages_leading_packets(self):
        trace = small_trace(8)
        blob = bytearray(trace.to_bytes())
        body_start = len(blob) - len(trace.body) - 12
        offset = trace.index().offset_of(3)
        blob[body_start + offset] ^= 0xFF   # break packet 3's bitvector
        salvaged = TraceFile.from_bytes(bytes(blob), salvage=True)
        assert salvaged.salvaged
        # At least the packets before the flipped byte survive.
        assert salvaged.metadata["salvaged"]["packets"] >= 3
        assert salvaged.packet_count >= 3

    def test_salvage_without_flag_still_raises(self):
        blob = small_trace().to_bytes()
        with pytest.raises(TraceIntegrityError):
            TraceFile.from_bytes(blob[:-1])

    def test_salvage_requires_intact_header(self):
        blob = bytearray(small_trace().to_bytes())
        blob[25] ^= 1
        with pytest.raises(TraceIntegrityError):
            TraceFile.from_bytes(bytes(blob[:-4]), salvage=True)

    def test_corrupt_compressed_body_cannot_salvage(self):
        blob = bytearray(small_trace().to_bytes(compress=True))
        blob[-16] ^= 1
        with pytest.raises(TraceIntegrityError):
            TraceFile.from_bytes(bytes(blob), salvage=True)

    def test_intact_blob_salvage_is_identity(self):
        blob = small_trace().to_bytes()
        loaded = TraceFile.from_bytes(blob, salvage=True)
        assert not loaded.salvaged
        assert bytes(loaded.body) == bytes(small_trace().body)


class TestScanPacketPrefix:
    def test_full_body_scans_completely(self):
        trace = small_trace(5)
        packets, nbytes = scan_packet_prefix(trace.body, trace.table,
                                             trace.with_validation)
        assert packets == 5
        assert nbytes == len(trace.body)

    def test_empty_body(self):
        trace = small_trace(1)
        assert scan_packet_prefix(b"", trace.table, True) == (0, 0)

    def test_garbage_tail_stops_scan(self):
        trace = small_trace(4)
        body = bytes(trace.body) + b"\xff\xff"
        packets, nbytes = scan_packet_prefix(body, trace.table, True)
        assert packets == 4
        assert nbytes == len(trace.body)


class TestTraceWriter:
    def test_streamed_file_equals_to_bytes(self, tmp_path):
        trace = small_trace(7)
        path = tmp_path / "run.trace"
        with TraceWriter(path, trace.table, metadata={"app": "unit"}) as w:
            index = trace.index()
            for ordinal in range(len(index)):
                w.append(index.slice(ordinal, ordinal + 1))
        assert path.exists()
        assert not path.with_name("run.trace.part").exists()
        loaded = TraceFile.load(path)
        assert bytes(loaded.body) == bytes(trace.body)
        assert loaded.metadata["app"] == "unit"

    def test_append_packet(self, tmp_path):
        trace = small_trace(3)
        path = tmp_path / "p.trace"
        with TraceWriter(path, trace.table) as w:
            for packet in trace.packets():
                w.append_packet(packet)
        assert bytes(TraceFile.load(path).body) == bytes(trace.body)

    def test_crash_leaves_salvageable_part_file(self, tmp_path):
        trace = small_trace(9)
        path = tmp_path / "crash.trace"
        writer = TraceWriter(path, trace.table)
        index = trace.index()
        for ordinal in range(4):
            writer.append(index.slice(ordinal, ordinal + 1))
        writer._fh.flush()          # simulate dying without close()
        part = path.with_name("crash.trace.part")
        assert part.exists() and not path.exists()
        salvaged = TraceFile.load(part, salvage=True)
        assert salvaged.salvaged
        assert salvaged.metadata["salvaged"]["packets"] == 4
        assert bytes(trace.body).startswith(bytes(salvaged.body))
        writer.abort()

    def test_exception_in_context_preserves_part(self, tmp_path):
        trace = small_trace(4)
        path = tmp_path / "x.trace"
        with pytest.raises(RuntimeError):
            with TraceWriter(path, trace.table) as w:
                w.append(trace.index().slice(0, 2))
                raise RuntimeError("recording died")
        part = path.with_name("x.trace.part")
        assert part.exists() and not path.exists()
        salvaged = TraceFile.load(part, salvage=True)
        assert salvaged.metadata["salvaged"]["packets"] == 2

    def test_abort_removes_part(self, tmp_path):
        path = tmp_path / "a.trace"
        writer = TraceWriter(path, small_table())
        writer.abort()
        assert not path.with_name("a.trace.part").exists()
        assert not path.exists()

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = TraceWriter(tmp_path / "c.trace", small_table())
        writer.close()
        with pytest.raises(TraceFormatError):
            writer.append(b"x")

    def test_footer_crc_matches_streamed_bytes(self, tmp_path):
        trace = small_trace(5)
        path = tmp_path / "crc.trace"
        with TraceWriter(path, trace.table) as w:
            w.append(trace.body)
        blob = path.read_bytes()
        assert blob[-4:] == zlib.crc32(bytes(trace.body)).to_bytes(4, "little")


class TestSalvagedReplay:
    def test_salvaged_prefix_replays_cleanly(self):
        """A crash-truncated recording still replays: the availability
        guarantee end to end (record -> truncate -> salvage -> replay)."""
        from repro.apps.registry import get_app
        from repro.core import VidiConfig, compare_traces
        from repro.harness.runner import bench_config, record_run, replay_run

        spec = get_app("sha256")
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=11)
        trace = metrics.result["trace"]
        blob = trace.to_bytes()
        cut = len(blob) - (len(trace.body) // 3) - 12
        salvaged = TraceFile.from_bytes(blob[:cut], salvage=True)
        assert salvaged.salvaged
        assert 0 < salvaged.packet_count < trace.packet_count
        replay = replay_run(spec, salvaged, max_cycles=400_000)
        report = compare_traces(trace, replay.result["validation"],
                                prefix=True)
        assert report.clean
