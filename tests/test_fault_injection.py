"""Tests for the fault-injection subsystem: plans, injector, containment.

The load-bearing test is the corruption grid
(:class:`TestCorruptionGrid`): seeded byte flips across every region
class of a real recorded trace, each asserting the outcome lands in
{masked, typed rejection, detected divergence} — never a hang (the
conftest alarm guard would catch one) and never a silent wrong-accept.
"""

import random

import pytest

from repro.apps.registry import get_app
from repro.core import VidiConfig, compare_traces
from repro.core.trace_file import TraceFile
from repro.errors import (
    FaultPlanError,
    ReplayStallError,
    ReproError,
    ShardReplayError,
    TraceFormatError,
    WatchdogTimeout,
)
from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan, run_campaign
from repro.harness.runner import bench_config, record_run, replay_run


@pytest.fixture(scope="module")
def reference():
    """One fault-free sha256 recording plus its replay outputs."""
    spec = get_app("sha256")
    metrics = record_run(spec, bench_config(VidiConfig.r2), seed=3)
    trace = metrics.result["trace"]
    replay = replay_run(spec, trace)
    return spec, metrics, trace, bytes(replay.result["validation"].body)


class TestFaultPlan:
    def test_parse_round_trip(self):
        text = "store-bitflip:flips=3;channel-stall:start=100,cycles=40"
        plan = FaultPlan.parse(text, seed=7)
        assert plan.seed == 7
        assert [s.kind for s in plan.specs] == ["store-bitflip",
                                                "channel-stall"]
        assert plan.specs[0]["flips"] == 3
        assert plan.specs[1]["cycles"] == 40
        assert plan.render() == text

    def test_defaults_apply(self):
        plan = FaultPlan.parse("store-brownout")
        assert plan.specs[0]["factor"] == 0.1

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("store-meltdown")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("store-bitflip:zaps=1")

    def test_bad_value_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("store-bitflip:flips=lots")

    def test_empty_plan_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(" ; ")

    def test_every_kind_constructs(self):
        for kind in FAULT_KINDS:
            assert FaultPlan.single(kind).specs[0].kind == kind

    def test_injector_is_seed_deterministic(self, reference):
        _spec, _metrics, trace, _val = reference
        blob = trace.to_bytes()
        one = FaultInjector(FaultPlan.parse("blob-corrupt:bytes=3", seed=9))
        two = FaultInjector(FaultPlan.parse("blob-corrupt:bytes=3", seed=9))
        assert one.mangle_blob(blob) == two.mangle_blob(blob)
        other = FaultInjector(FaultPlan.parse("blob-corrupt:bytes=3", seed=10))
        assert one.mangle_blob(blob) != other.mangle_blob(blob)


class TestCorruptionGrid:
    """Seeded byte flips across every container region of a real trace:
    every outcome must be masked, a typed rejection, or a detected
    divergence — never a silent wrong-accept."""

    REGIONS = ("magic", "length", "header", "body", "footer")

    def classify(self, spec, trace, original, damaged):
        try:
            loaded = TraceFile.from_bytes(damaged)
        except TraceFormatError:
            return "rejected"
        if bytes(loaded.body) == bytes(trace.body):
            return "masked"
        try:
            replay = replay_run(spec, loaded, max_cycles=400_000)
            report = compare_traces(loaded, replay.result["validation"])
        except ReproError:
            return "rejected"
        if not report.clean:
            return "divergence"
        return "silent-accept"

    def test_grid_over_all_regions(self, reference):
        from repro.core.mutation import corrupt_frame

        spec, _metrics, trace, _val = reference
        blob = trace.to_bytes()
        rng = random.Random(42)
        outcomes = {}
        for i in range(40):
            region = self.REGIONS[i % len(self.REGIONS)]
            _desc, damaged = corrupt_frame(blob, rng, region=region)
            verdict = self.classify(spec, trace, blob, damaged)
            outcomes.setdefault(region, set()).add(verdict)
            assert verdict != "silent-accept", (region, _desc)
        # Every region class was exercised and every flip was contained.
        assert set(outcomes) == set(self.REGIONS)
        for verdicts in outcomes.values():
            assert verdicts <= {"masked", "rejected", "divergence"}

    def test_grid_on_v1_still_contained(self, reference):
        """v1 has no CRCs, but framing checks still reject whole regions;
        body flips must surface as decode errors or divergence."""
        spec, _metrics, trace, _val = reference
        blob = trace.to_bytes(version=1)
        rng = random.Random(7)
        for _ in range(10):
            damaged = bytearray(blob)
            position = rng.randrange(16)    # magic + header length words
            damaged[position] ^= 1 << rng.randrange(8)
            verdict = self.classify(spec, trace, blob, bytes(damaged))
            assert verdict in ("masked", "rejected")


class TestStoreFaults:
    def test_bitflip_lands_in_containment(self, reference):
        spec, _metrics, trace, ref_val = reference
        injector = FaultInjector(FaultPlan.single("store-bitflip", seed=1,
                                                  flips=2))
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=3,
                             before_run=injector.arm_recording)
        corrupted = metrics.result["trace"]
        assert bytes(corrupted.body) != bytes(trace.body)
        assert any("store-bitflip" in entry for entry in injector.log)
        try:
            replay = replay_run(spec, corrupted, max_cycles=400_000)
            report = compare_traces(corrupted, replay.result["validation"])
            detected = not report.clean
            if not detected:
                # Semantically invisible flip: outputs must match reference.
                assert bytes(replay.result["validation"].body) == ref_val
        except ReproError:
            detected = True
        # Either verdict is fine; a hang or wrong-accept is not, and both
        # were excluded above / by the alarm guard.

    def test_word_drop_detected(self, reference):
        spec, _metrics, trace, _val = reference
        injector = FaultInjector(FaultPlan.single("store-drop", seed=2,
                                                  words=1))
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=3,
                             before_run=injector.arm_recording)
        corrupted = metrics.result["trace"]
        assert len(corrupted.body) == len(trace.body) - 64
        with pytest.raises(ReproError):
            replay = replay_run(spec, corrupted, max_cycles=400_000)
            report = compare_traces(corrupted, replay.result["validation"])
            if not report.clean:
                raise ReproError("divergence detected")   # accepted verdict

    def test_corruption_is_idempotent_across_flushes(self, reference):
        spec, _metrics, _trace, _val = reference
        injector = FaultInjector(FaultPlan.single("store-bitflip", seed=4))
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=3,
                             before_run=injector.arm_recording)
        deployment_trace = metrics.result["trace"]
        assert len(injector.log) == 1   # one flip despite repeated flush()


class TestTimingFaults:
    """Brownouts and channel stalls perturb timing only; the paper's
    back-pressure argument (§3.3) says recording must mask them
    losslessly: the run still completes, the host result still checks
    out, and the recorded trace still replays without divergence."""

    @pytest.mark.parametrize("plan_text", [
        "store-brownout:factor=0.05,start=100,cycles=1500",
        "store-brownout:factor=0.0,start=0,cycles=800",
        "channel-stall:start=200,cycles=300",
        "channel-stall:start=50,cycles=120;channel-stall:start=700,cycles=90",
    ])
    def test_masked_losslessly(self, reference, plan_text):
        spec, _metrics, _trace, _val = reference
        injector = FaultInjector(FaultPlan.parse(plan_text, seed=5))
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=3,
                             before_run=injector.arm_recording)
        trace = metrics.result["trace"]
        replay = replay_run(spec, trace, max_cycles=400_000)
        report = compare_traces(trace, replay.result["validation"])
        assert report.clean

    def test_brownout_slows_the_recording(self, reference):
        spec, metrics, _trace, _val = reference
        injector = FaultInjector(FaultPlan.parse(
            "store-brownout:factor=0.0,start=0,cycles=2000", seed=6))
        throttled = record_run(spec, bench_config(VidiConfig.r2), seed=3,
                               before_run=injector.arm_recording)
        assert throttled.store_stall_cycles >= metrics.store_stall_cycles
        assert throttled.cycles >= metrics.cycles


class TestReplayStall:
    def livelocked_trace(self, trace):
        """Append an end nobody will ever complete before the last packet."""
        from repro.core.mutation import TraceMutator
        from repro.core.packets import CyclePacket

        mutator = TraceMutator(trace)
        mutator.packets.insert(len(mutator.packets) - 1, CyclePacket(ends=1))
        return mutator.build()

    def test_livelock_raises_structured_stall_error(self, reference):
        spec, _metrics, trace, _val = reference
        bad = self.livelocked_trace(trace)
        with pytest.raises(ReplayStallError) as excinfo:
            replay_run(spec, bad, max_cycles=1_000_000)
        err = excinfo.value
        assert err.cycle is not None
        assert err.last_progress_cycle is not None
        assert err.cycle > err.last_progress_cycle
        assert err.current_clock is not None
        assert err.channels
        stuck = err.channels[0]
        assert stuck["waiting_on"]
        assert "needs" in stuck["waiting_on"][0]

    def test_stall_error_is_watchdog_timeout(self, reference):
        """Existing except-WatchdogTimeout handlers keep working."""
        spec, _metrics, trace, _val = reference
        bad = self.livelocked_trace(trace)
        with pytest.raises(WatchdogTimeout):
            replay_run(spec, bad, max_cycles=1_000_000)

    def test_clean_replay_unaffected_by_watchdog(self, reference):
        """Chunked stepping must keep cycle counts bit-identical."""
        spec, _metrics, trace, _val = reference
        acc_factory, _host = spec.make()
        from repro.harness.runner import trace_interfaces
        from repro.platform.shell import F1Deployment

        config = VidiConfig.r3(interfaces=trace_interfaces(trace))
        plain = F1Deployment("stall_ref", acc_factory, config,
                             replay_trace=trace)
        cycles_plain = plain.run_replay(stall_budget=10**9)
        chunked = F1Deployment("stall_chk", acc_factory, config,
                               replay_trace=trace)
        # sha256 computes internally for ~2000 cycles with no channel
        # activity; 2048 stays above that legitimate gap while still
        # splitting the run across more than one watchdog chunk.
        cycles_chunked = chunked.run_replay(stall_budget=2048)
        assert cycles_plain == cycles_chunked
        assert bytes(plain.recorded_trace().body) \
            == bytes(chunked.recorded_trace().body)


class TestWorkerCrash:
    def test_inline_crash_raises_not_exits(self):
        """Outside a pool worker the crash must not kill the process."""
        from repro.faults.injector import CrashingWorker

        calls = []

        def worker(cell):
            calls.append(cell)
            return {"cell": cell}

        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            crashing = CrashingWorker(worker, [repr("a")], tmp)
            with pytest.raises(ShardReplayError):
                crashing("a")
            assert crashing("a") == {"cell": "a"}   # retry succeeds
            assert crashing("b") == {"cell": "b"}   # untargeted cell fine


class TestCampaign:
    def test_small_campaign_has_no_silent_accepts(self):
        report = run_campaign(app="sha256", n_faults=12, seed=2)
        assert len(report.trials) == 12
        assert not report.silent_accepts
        assert report.kinds_exercised >= 5
        rendered = report.render()
        assert "no silent wrong-accepts" in rendered

    def test_campaign_is_deterministic(self):
        one = run_campaign(app="sha256", n_faults=6, seed=3)
        two = run_campaign(app="sha256", n_faults=6, seed=3)
        assert [(t.kind, t.seed, t.outcome) for t in one.trials] \
            == [(t.kind, t.seed, t.outcome) for t in two.trials]

    def test_flight_recorder_is_the_campaign_default(self):
        """The default (None) resolves to flight-recorder record legs.

        Campaign fleets are the deployments the always-on recorder exists
        for, so ``run_campaign`` now defaults it on. The regression pinned
        here: the default is trial-for-trial identical to an explicit
        ``flight_recorder=True``, and the opt-out still contains every
        fault (same schedule — the fault plans are drawn before any leg
        runs — with v2 flat containers under attack instead of v3).
        """
        default = run_campaign(app="sha256", n_faults=8, seed=5)
        explicit = run_campaign(app="sha256", n_faults=8, seed=5,
                                flight_recorder=True)
        assert [(t.index, t.kind, t.seed, t.outcome, t.detail)
                for t in default.trials] \
            == [(t.index, t.kind, t.seed, t.outcome, t.detail)
                for t in explicit.trials]
        opt_out = run_campaign(app="sha256", n_faults=8, seed=5,
                               flight_recorder=False)
        assert [(t.index, t.kind, t.seed) for t in opt_out.trials] \
            == [(t.index, t.kind, t.seed) for t in default.trials]
        assert not opt_out.silent_accepts
        assert not default.silent_accepts
