"""Tests for the trace-built tools: profiler, auditor, fuzzer."""

import pytest

from repro.analysis.audit import (
    AuditPolicy,
    MemoryWindow,
    audit_trace,
    render_audit,
)
from repro.analysis.profile import profile_trace, render_profile
from repro.apps import atop_echo, dram_dma
from repro.core import VidiConfig
from repro.platform import F1Deployment
from repro.tools.fuzz import fuzz_replay, render_fuzz


@pytest.fixture(scope="module")
def dma_trace():
    acc_factory, host_factory = dram_dma.make(polling=False)
    deployment = F1Deployment("prof", acc_factory, VidiConfig.r2(), seed=3)
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=3, scale=1.0))
    deployment.run_to_completion()
    assert result["ok"]
    return deployment.recorded_trace({"app": "dram_dma"})


class TestProfiler:
    def test_transaction_counts_match_trace(self, dma_trace):
        profile = profile_trace(dma_trace)
        total_ends = sum(bin(p.ends).count("1") for p in dma_trace.packets())
        assert sum(c.transactions for c in profile.channels.values()) == \
            total_ends

    def test_busiest_channel_is_dma_data(self, dma_trace):
        profile = profile_trace(dma_trace)
        busiest = profile.busiest(1)[0]
        assert busiest.name in ("pcis.w", "pcis.r")

    def test_latency_measured_for_inputs(self, dma_trace):
        profile = profile_trace(dma_trace)
        ctrl = profile.channels["ocl.w"]
        assert ctrl.latencies
        assert ctrl.mean_latency >= 0.0
        assert ctrl.max_latency >= int(ctrl.mean_latency)

    def test_timeline_buckets(self, dma_trace):
        profile = profile_trace(dma_trace, timeline_buckets=10)
        assert len(profile.timeline) == 10
        assert sum(profile.timeline) > 0

    def test_render(self, dma_trace):
        text = render_profile(profile_trace(dma_trace))
        assert "trace profile" in text
        assert "activity timeline" in text

    def test_idle_channels_have_no_span(self, dma_trace):
        profile = profile_trace(dma_trace)
        assert profile.channels["bar1.aw"].active_span == 0


class TestAuditor:
    def policy(self, windows):
        return [AuditPolicy(interface="pcim", windows=windows)]

    def test_compliant_trace_passes(self, dma_trace):
        from repro.apps.base import DOORBELL_ADDR
        from repro.apps.dram_dma import MIRROR_HOST_ADDR

        windows = [
            MemoryWindow(MIRROR_HOST_ADDR, 0x1000, allow_read=False),
            MemoryWindow(DOORBELL_ADDR, 64, allow_read=False),
        ]
        violations = audit_trace(dma_trace, self.policy(windows))
        assert violations == []
        assert "no out-of-policy" in render_audit(violations)

    def test_narrow_policy_flags_the_mirror(self, dma_trace):
        from repro.apps.base import DOORBELL_ADDR

        windows = [MemoryWindow(DOORBELL_ADDR, 64)]   # doorbell only
        violations = audit_trace(dma_trace, self.policy(windows))
        assert violations
        assert all(v.operation == "write" for v in violations)
        assert all(v.channel == "pcim.aw" for v in violations)
        assert "out-of-policy" in render_audit(violations)

    def test_unpoliced_interfaces_ignored(self, dma_trace):
        violations = audit_trace(dma_trace, [
            AuditPolicy(interface="bar1", windows=[])])
        assert violations == []

    def test_report_truncates(self):
        from repro.analysis.audit import AuditViolation

        many = [AuditViolation(i, "pcim.aw", "write", i, "x")
                for i in range(30)]
        assert "more" in render_audit(many)


class TestFuzzer:
    @pytest.fixture(scope="class")
    def atop_trace(self):
        acc_factory, host_factory = atop_echo.make(buggy=True, n_words=8)
        deployment = F1Deployment("fz", acc_factory, VidiConfig.r2(), seed=5)
        result = {}
        deployment.cpu.add_thread(host_factory(result, seed=5, scale=0.5))
        deployment.run_to_completion()
        assert result["ok"]
        return deployment.recorded_trace(), acc_factory

    def test_fuzzer_finds_the_atop_deadlock(self, atop_trace):
        """Random end reorderings rediscover the §5.3 bug automatically,
        with causally-impossible mutants triaged via the fixed design."""
        trace, acc_factory = atop_trace
        fixed_factory, _ = atop_echo.make(buggy=False, n_words=8)
        outcomes = fuzz_replay(trace, acc_factory, n_mutants=25, seed=1,
                               max_cycles=8_000,
                               reference_factory=fixed_factory)
        verdicts = {o.verdict for o in outcomes}
        assert "deadlock" in verdicts
        deadlocks = [o for o in outcomes if o.verdict == "deadlock"]
        # The offending mutants involve the filtered pcim write path.
        assert any("pcim" in o.mutation for o in deadlocks)

    def test_fixed_filter_survives_the_same_fuzz(self, atop_trace):
        """Fuzzing the fixed design against itself finds no true deadlock:
        every timeout is a causally impossible mutant."""
        trace, _ = atop_trace
        fixed_factory, _ = atop_echo.make(buggy=False, n_words=8)
        outcomes = fuzz_replay(trace, fixed_factory, n_mutants=25, seed=1,
                               max_cycles=8_000,
                               reference_factory=fixed_factory)
        assert all(o.verdict != "deadlock" for o in outcomes)

    def test_render_fuzz(self, atop_trace):
        trace, acc_factory = atop_trace
        outcomes = fuzz_replay(trace, acc_factory, n_mutants=6, seed=2,
                               max_cycles=8_000)
        text = render_fuzz(outcomes)
        assert "fuzz summary" in text
