"""Tests for the cycle-accurate and order-less baselines, incl. §6 math."""

import pytest

from repro.baselines import (
    CycleAccurateRecorder,
    CycleAccurateReplayer,
    OrderlessRecorder,
    OrderlessReplayer,
    cycle_accurate_trace_bytes,
    input_signal_bits,
    panopticon_envelope,
)
from repro.channels import Channel, ChannelSink, ChannelSource, Field, PayloadSpec
from repro.sim import Module, Simulator

WORD = PayloadSpec([Field("data", 32)])


def build_pair():
    """An input and an output channel with simple endpoints."""
    sim = Simulator()
    chan_in = Channel("in", WORD, direction="in")
    chan_out = Channel("out", WORD, direction="out")
    src = ChannelSource("src", chan_in)
    sink = ChannelSink("sink", chan_in)

    class Echo(Module):
        """Forwards every received input payload to the output channel."""

        def __init__(self):
            super().__init__("echo")
            self.out_src = ChannelSource("echo.out", chan_out)
            self.submodule(self.out_src)

        def seq(self):
            if chan_in.fired:
                self.out_src.send_packed(chan_in.payload.value)

    echo = Echo()
    out_sink = ChannelSink("out_sink", chan_out)
    for m in (chan_in, chan_out, src, sink, echo, out_sink):
        sim.add(m)
    return sim, chan_in, chan_out, src, sink, echo, out_sink


class TestInputSignalBits:
    def test_per_direction_accounting(self):
        chan_in = Channel("i", WORD, direction="in")
        chan_out = Channel("o", WORD, direction="out")
        # input: 32 payload + VALID; output: READY only.
        assert input_signal_bits([chan_in]) == 33
        assert input_signal_bits([chan_out]) == 1
        assert input_signal_bits([chan_in, chan_out]) == 34

    def test_trace_bytes_scale_with_cycles(self):
        chan_in = Channel("i", WORD, direction="in")
        assert cycle_accurate_trace_bytes([chan_in], 100) == 500  # ceil(33/8)*100


class TestCycleAccurateRecordReplay:
    def test_roundtrip_is_bit_exact(self):
        """Record all input signals; replaying them recreates the run."""
        sim, chan_in, chan_out, src, sink, echo, out_sink = build_pair()
        recorder = CycleAccurateRecorder(
            "rec", [chan_in, chan_out])
        sim.add(recorder)
        for i in range(5):
            src.send({"data": 100 + i})
        sim.run(40)
        assert [w for w in out_sink.received] == [100 + i for i in range(5)]
        frames = recorder.frames

        # Fresh circuit, driven cycle-by-cycle from the recording. The
        # replayer drives chan_in.valid/payload and chan_out.ready.
        sim2 = Simulator()
        chan_in2 = Channel("in", WORD, direction="in")
        chan_out2 = Channel("out", WORD, direction="out")

        class Echo2(Module):
            def __init__(self):
                super().__init__("echo2")
                self.out_src = ChannelSource("echo2.out", chan_out2)
                self.submodule(self.out_src)

            def seq(self):
                if chan_in2.fired:
                    self.out_src.send_packed(chan_in2.payload.value)

        sink2 = ChannelSink("sink2", chan_in2)
        received = []

        class OutWatch(Module):
            has_comb = False

            def __init__(self):
                super().__init__("watch")

            def seq(self):
                if chan_out2.fired:
                    received.append(chan_out2.payload.value)

        frames2 = [
            {k.replace("in.", "in.").replace("out.", "out."): v
             for k, v in frame.items()} for frame in frames
        ]
        replayer = CycleAccurateReplayer("rep", [chan_in2, chan_out2], frames2)
        for m in (chan_in2, chan_out2, replayer, Echo2(), sink2, OutWatch()):
            sim2.add(m)
        sim2.run(len(frames2) + 5)
        assert received == [100 + i for i in range(5)]

    def test_trace_size_matches_model(self):
        sim, chan_in, chan_out, src, sink, echo, out_sink = build_pair()
        recorder = CycleAccurateRecorder("rec", [chan_in, chan_out])
        sim.add(recorder)
        sim.run(25)
        assert recorder.trace_bytes == cycle_accurate_trace_bytes(
            [chan_in, chan_out], 25)


class TestOrderlessBaseline:
    def test_recorder_captures_per_channel_contents(self):
        sim, chan_in, chan_out, src, sink, echo, out_sink = build_pair()
        recorder = OrderlessRecorder("ol", [chan_in, chan_out])
        sim.add(recorder)
        for i in range(3):
            src.send({"data": i})
        sim.run(30)
        assert [WORD.from_bytes(b) for b in recorder.streams["in"]] == [0, 1, 2]
        assert [WORD.from_bytes(b) for b in recorder.streams["out"]] == [0, 1, 2]

    def test_replayer_drives_streams_without_ordering(self):
        # Record one channel, replay it into a fresh sink.
        sim, chan_in, chan_out, src, sink, echo, out_sink = build_pair()
        recorder = OrderlessRecorder("ol", [chan_in, chan_out])
        sim.add(recorder)
        for i in range(4):
            src.send({"data": 10 + i})
        sim.run(40)

        sim2 = Simulator()
        chan_in2 = Channel("in", WORD, direction="in")
        sink2 = ChannelSink("s2", chan_in2)
        replayer = OrderlessReplayer("rep", [chan_in2],
                                     {"in": recorder.streams["in"]})
        for m in (chan_in2, replayer, sink2):
            sim2.add(m)
        sim2.run(20)
        assert sink2.received == [10, 11, 12, 13]
        assert replayer.done

    def test_trace_bytes(self):
        sim, chan_in, chan_out, src, sink, echo, out_sink = build_pair()
        recorder = OrderlessRecorder("ol", [chan_in])
        sim.add(recorder)
        src.send({"data": 1})
        sim.run(10)
        assert recorder.trace_bytes == 4   # one 32-bit content


class TestPanopticonEnvelope:
    def test_paper_defaults(self):
        envelope = panopticon_envelope()
        assert envelope.peak_bandwidth_gbs == pytest.approx(18.53, abs=0.01)
        assert envelope.seconds_to_loss == pytest.approx(3.3e-3, abs=0.1e-3)
        assert envelope.loses_data

    def test_no_loss_when_drain_sufficient(self):
        envelope = panopticon_envelope(traced_bits=64,
                                       drain_bytes_per_s=5.5e9)
        assert not envelope.loses_data
        assert envelope.seconds_to_loss == float("inf")

    def test_wider_trace_loses_faster(self):
        narrow = panopticon_envelope(traced_bits=600)
        wide = panopticon_envelope(traced_bits=2000)
        assert wide.seconds_to_loss < narrow.seconds_to_loss
