"""End-to-end Vidi tests on the F1 deployment: R1 -> R2 -> R3 workflows."""

import pytest

from repro.apps.dram_dma import check, make
from repro.core import VidiConfig, VidiMode, compare_traces
from repro.errors import ConfigError
from repro.platform import EnvironmentMode, F1Deployment


def run_host(config, seed, host_seed=7, scale=0.25, polling=True, **dep_kwargs):
    acc_factory, host_factory = make(polling=polling)
    dep = F1Deployment("t", acc_factory, config, seed=seed, **dep_kwargs)
    result = {}
    dep.cpu.add_thread(host_factory(result, seed=host_seed, scale=scale))
    cycles = dep.run_to_completion(max_cycles=400_000)
    return dep, result, cycles


def run_replay(trace, polling=True):
    acc_factory, _ = make(polling=polling)
    dep = F1Deployment("r", acc_factory, VidiConfig.r3(), replay_trace=trace)
    cycles = dep.run_replay(max_cycles=400_000)
    return dep, cycles


class TestRecordTransparency:
    """§5.4 'Recording': R1 and R2 must produce identical application output."""

    def test_r1_produces_correct_output(self):
        _, result, _ = run_host(VidiConfig.r1(), seed=3)
        check(result)

    def test_r2_produces_correct_output(self):
        _, result, _ = run_host(VidiConfig.r2(), seed=3)
        check(result)

    def test_r1_r2_same_cycles_same_seed(self):
        """With ample store bandwidth, recording adds zero cycles."""
        _, _, c1 = run_host(VidiConfig.r1(), seed=5)
        _, _, c2 = run_host(VidiConfig.r2(), seed=5)
        assert c1 == c2

    def test_recording_deterministic_given_seed(self):
        dep_a, _, _ = run_host(VidiConfig.r2(), seed=11)
        dep_b, _, _ = run_host(VidiConfig.r2(), seed=11)
        assert dep_a.recorded_trace().body == dep_b.recorded_trace().body


class TestReplay:
    def test_replay_completes_and_validates(self):
        dep, result, _ = run_host(VidiConfig.r2(), seed=2)
        check(result)
        trace = dep.recorded_trace({"app": "dram_dma"})
        rdep, _ = run_replay(trace)
        report = compare_traces(trace, rdep.recorded_trace())
        assert report.output_transactions > 0
        # Polling can legitimately diverge in content; ordering and counts
        # must always hold under transaction determinism.
        assert not report.of_kind("count")
        assert not report.of_kind("ordering")

    def test_replay_recreates_internal_state(self):
        """Replay reconstructs on-FPGA DRAM contents from the trace alone."""
        dep, result, _ = run_host(VidiConfig.r2(), seed=4)
        trace = dep.recorded_trace()
        rdep, _ = run_replay(trace)
        from repro.apps.dram_dma import DST_BASE
        expected = result["expected"]
        replayed = rdep.accelerator.dram.read_bytes(DST_BASE, len(expected))
        assert replayed == expected

    def test_interrupt_patched_app_never_diverges(self):
        """§3.6: the 10-line interrupt patch removes all content divergence."""
        dep, result, _ = run_host(VidiConfig.r2(), seed=6, polling=False)
        check(result)
        trace = dep.recorded_trace()
        rdep, _ = run_replay(trace, polling=False)
        report = compare_traces(trace, rdep.recorded_trace())
        assert report.clean, report.summary()

    def test_replay_is_deterministic(self):
        dep, _, _ = run_host(VidiConfig.r2(), seed=8)
        trace = dep.recorded_trace()
        a, _ = run_replay(trace)
        b, _ = run_replay(trace)
        assert a.recorded_trace().body == b.recorded_trace().body

    def test_replay_needs_trace(self):
        acc_factory, _ = make()
        with pytest.raises(ConfigError):
            F1Deployment("x", acc_factory, VidiConfig.r3())

    def test_replay_faster_than_record(self):
        """Replay delivers inputs as early as orderings allow."""
        dep, _, rec_cycles = run_host(VidiConfig.r2(), seed=9)
        trace = dep.recorded_trace()
        _, rep_cycles = run_replay(trace)
        assert rep_cycles <= rec_cycles


class TestInterfaceSubsets:
    def test_partial_monitoring_records_only_selected(self):
        config = VidiConfig.r2(interfaces=("ocl",))
        dep, result, _ = run_host(config, seed=3)
        check(result)
        trace = dep.recorded_trace()
        assert len(trace.table) == 5  # one interface, five channels
        assert all(info.name.endswith(ch)
                   for info, ch in zip(trace.table.channels,
                                       ("aw", "w", "b", "ar", "r")))

    def test_unknown_interface_rejected(self):
        with pytest.raises(ConfigError):
            VidiConfig.r2(interfaces=("sda", "nvme"))

    def test_mode_enum_values(self):
        assert VidiConfig.r1().mode is VidiMode.TRANSPARENT
        assert VidiConfig.r2().mode is VidiMode.RECORD
        assert VidiConfig.r3().mode is VidiMode.REPLAY


class TestEnvironmentModes:
    def test_vendor_sim_rejects_second_thread(self):
        from repro.errors import SimulationError
        acc_factory, host_factory = make()
        dep = F1Deployment("s", acc_factory, VidiConfig.r1(),
                           env_mode=EnvironmentMode.VENDOR_SIM, seed=0)
        dep.cpu.add_thread(host_factory({}, seed=1))
        with pytest.raises(SimulationError):
            dep.cpu.add_thread(host_factory({}, seed=2))

    def test_hardware_supports_threads(self):
        acc_factory, host_factory = make()
        dep = F1Deployment("h", acc_factory, VidiConfig.r1(),
                           env_mode=EnvironmentMode.HARDWARE, seed=0)
        r1, r2 = {}, {}
        dep.cpu.add_thread(host_factory(r1, seed=1))
        # A second, trivial thread that only waits.
        from repro.platform import WaitCycles

        def idler():
            yield WaitCycles(10)

        dep.cpu.add_thread(idler())
        dep.run_to_completion(max_cycles=400_000)
        check(r1)
