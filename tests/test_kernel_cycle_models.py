"""Cycle-cost model tests: kernels occupy hardware-plausible time.

Table 1's trace-reduction and overhead shapes depend on each kernel's
compute:I/O ratio, so the cycle models are load-bearing. These tests pin
each kernel's busy time to its analytic model within loose bounds, and
check that compute time scales the right way with workload size.
"""

import pytest

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, record_run


def busy_cycles(key, scale, seed=60):
    spec = get_app(key)
    # Reuse the deployment via record_run; the accelerator tracks busy time.
    acc_factory, host_factory = spec.make()
    from repro.platform import F1Deployment

    deployment = F1Deployment("cyc", acc_factory,
                              bench_config(VidiConfig.r1), seed=seed)
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=seed, scale=scale))
    deployment.run_to_completion(max_cycles=4_000_000)
    spec.check(result)
    return deployment.accelerator.busy_cycles


class TestAbsoluteModels:
    def test_sha256_about_64_cycles_per_block(self):
        # scale 1.0 -> 2048-byte message -> 33 padded blocks.
        busy = busy_cycles("sha256", 1.0)
        blocks = (2048 + 9 + 63) // 64
        assert 0.8 * 64 * blocks <= busy <= 1.6 * 64 * blocks

    def test_sssp_about_edges_times_rounds(self):
        busy = busy_cycles("sssp", 1.0)
        n_verts, n_edges = 48, 240   # scale 1.0 registry workload
        expected = n_edges + (n_verts - 1) * n_edges
        assert 0.9 * expected <= busy <= 1.3 * expected

    def test_digitr_about_train_times_test(self):
        busy = busy_cycles("digit_recognition", 1.0)
        expected = 64 + 12 * 64      # load + scans
        assert 0.8 * expected <= busy <= 1.5 * expected


class TestScaling:
    @pytest.mark.parametrize("key,expected_ratio_min", [
        ("sha256", 1.6),             # linear in message size
        ("spam_filter", 1.6),        # linear in samples
        ("bnn", 1.5),                # linear in inference count
    ])
    def test_compute_scales_linearly(self, key, expected_ratio_min):
        small = busy_cycles(key, 0.5)
        large = busy_cycles(key, 1.0)
        assert large / small >= expected_ratio_min

    def test_sssp_scales_superlinearly(self):
        """Fixed |V|-1 rounds over an edge list: ~quadratic in scale."""
        small = busy_cycles("sssp", 0.5)
        large = busy_cycles("sssp", 1.0)
        assert large / small > 2.5


class TestHarnessRecordReplayCli:
    def test_record_then_replay_roundtrip(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        path = tmp_path / "cli.trace"
        assert main(["record", "sha256", "-o", str(path), "--seed", "4",
                     "--scale", "0.4", "--compress"]) == 0
        assert path.exists()
        assert main(["replay", "sha256", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no divergences" in out

    def test_record_unknown_app(self, tmp_path):
        from repro.errors import ConfigError
        from repro.harness.__main__ import main

        with pytest.raises(ConfigError):
            main(["record", "quantum", "-o", str(tmp_path / "x")])
