"""Tests for the offline trace tool CLI (``python -m repro.tools``)."""

import pytest

from repro.apps.sha256 import make
from repro.core import VidiConfig, compare_traces
from repro.core.trace_file import TraceFile
from repro.platform import F1Deployment
from repro.tools import main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """One recorded SHA-256 trace shared by every CLI test."""
    accelerator_factory, host_factory = make()
    deployment = F1Deployment("cli", accelerator_factory, VidiConfig.r2(),
                              seed=1)
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=2, scale=0.3))
    deployment.run_to_completion()
    assert result["ok"]
    path = tmp_path_factory.mktemp("traces") / "sha.trace"
    deployment.recorded_trace({"app": "sha256"}).save(path)
    return str(path)


class TestInfoStatsDump:
    def test_info(self, trace_path, capsys):
        assert main(["info", trace_path]) == 0
        out = capsys.readouterr().out
        assert "25 channels" in out
        assert "pcis.w" in out and "593" in out

    def test_stats_hides_idle_channels(self, trace_path, capsys):
        assert main(["stats", trace_path]) == 0
        out = capsys.readouterr().out
        assert "ocl.w" in out
        assert "bar1.aw" not in out   # no traffic on bar1

    def test_stats_all_includes_idle(self, trace_path, capsys):
        assert main(["stats", trace_path, "--all"]) == 0
        assert "bar1.aw" in capsys.readouterr().out

    def test_dump_limit(self, trace_path, capsys):
        assert main(["dump", trace_path, "--limit", "3"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 3

    def test_dump_filters_by_channel(self, trace_path, capsys):
        assert main(["dump", trace_path, "--channel", "ocl.w"]) == 0
        out = capsys.readouterr().out
        assert "ocl.w" in out
        assert "pcis.w" not in out

    def test_dump_unknown_channel_fails_cleanly(self, trace_path, capsys):
        assert main(["dump", trace_path, "--channel", "nvme.q"]) == 2

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["info", "/nonexistent.trace"]) == 2


class TestDiff:
    def test_identical_traces_exit_zero(self, trace_path, capsys):
        assert main(["diff", trace_path, trace_path]) == 0
        assert "no divergences" in capsys.readouterr().out

    def test_divergent_traces_exit_one(self, trace_path, tmp_path, capsys):
        trace = TraceFile.load(trace_path)
        packets = trace.packets()
        # Corrupt one output content in a copy.
        for packet in packets:
            if packet.validation:
                index = next(iter(packet.validation))
                packet.validation[index] = b"\xFF" * len(
                    packet.validation[index])
                break
        other = TraceFile.from_packets(trace.table, packets,
                                       with_validation=True)
        other_path = tmp_path / "other.trace"
        other.save(other_path)
        assert main(["diff", trace_path, str(other_path)]) == 1
        assert "content" in capsys.readouterr().out


class TestMutate:
    def test_legal_reorder(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "mut.trace"
        assert main(["mutate", trace_path, "-o", str(out_path),
                     "--move-end-before", "pcim.w:0", "pcim.aw:0"]) == 0
        mutated = TraceFile.load(out_path)
        assert mutated.metadata["mutated"] is True

    def test_illegal_mutation_refused(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "bad.trace"
        # Moving an input channel's end before its own start is refused.
        assert main(["mutate", trace_path, "-o", str(out_path),
                     "--move-end-before", "pcis.w:0", "pcis.aw:0"]) == 2
        assert not out_path.exists()

    def test_force_overrides_validation(self, trace_path, tmp_path):
        out_path = tmp_path / "forced.trace"
        assert main(["mutate", trace_path, "-o", str(out_path), "--force",
                     "--move-end-before", "pcis.w:0", "pcis.aw:0"]) == 0
        assert out_path.exists()

    def test_drop_and_rewrite(self, trace_path, tmp_path):
        out_path = tmp_path / "edit.trace"
        new_content = "ab" * 5   # ocl.w content is 5 bytes
        assert main(["mutate", trace_path, "-o", str(out_path),
                     "--drop-end", "pcim.b:0",
                     "--rewrite-content", "ocl.w:0", new_content]) == 0
        mutated = TraceFile.load(out_path)
        ocl_w = mutated.table.by_name("ocl.w").index
        first = next(p for p in mutated.packets()
                     if (p.starts >> ocl_w) & 1)
        assert first.contents[ocl_w] == bytes.fromhex(new_content)

    def test_bad_event_syntax(self, trace_path, tmp_path, capsys):
        assert main(["mutate", trace_path, "-o", str(tmp_path / "x"),
                     "--drop-end", "nocolon"]) == 2


class TestFuzzCommand:
    def test_triage_reduces_false_deadlocks(self, trace_path, capsys):
        # Without a reference, causally impossible mutants read as
        # deadlocks; triaging against the same (correct) design clears them.
        exit_untriaged = main(["fuzz", "sha256", trace_path,
                               "--mutants", "6", "--max-cycles", "4000"])
        out_untriaged = capsys.readouterr().out
        exit_triaged = main(["fuzz", "sha256", trace_path,
                             "--mutants", "6", "--max-cycles", "4000",
                             "--reference-app", "sha256"])
        out_triaged = capsys.readouterr().out
        assert "fuzz summary" in out_triaged
        assert "deadlock" not in out_triaged
        assert exit_triaged == 0
        if "deadlock" in out_untriaged:
            assert exit_untriaged == 1
