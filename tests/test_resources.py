"""Tests for the analytical resource model (Table 2 / Fig. 7)."""

import pytest

from repro.apps.registry import APPS
from repro.errors import ResourceModelError
from repro.resources.model import (
    FIG7_COMBINATIONS,
    fig7_sweep,
    interface_payload_bits,
    shim_resources,
)


class TestInterfaceWidths:
    def test_lite_and_full_widths(self):
        assert interface_payload_bits("sda") == 136
        assert interface_payload_bits("ocl") == 136
        assert interface_payload_bits("bar1") == 136
        assert interface_payload_bits("pcim") == 1324
        assert interface_payload_bits("pcis") == 1324

    def test_unknown_interface_rejected(self):
        with pytest.raises(ResourceModelError):
            interface_payload_bits("nvme")


class TestShimResources:
    def test_full_configuration_matches_paper_ballpark(self):
        report = shim_resources()
        assert report.monitored_bits == 3056
        assert 5.2 < report.lut_pct < 6.0      # paper: ~5.6
        assert 3.6 < report.ff_pct < 4.1       # paper: ~3.8
        assert report.bram_pct == pytest.approx(6.92, abs=0.05)

    def test_per_app_perturbation_is_deterministic(self):
        a = shim_resources(app="bnn")
        b = shim_resources(app="bnn")
        assert (a.luts, a.ffs) == (b.luts, b.ffs)

    def test_different_apps_differ(self):
        assert shim_resources(app="bnn").luts != shim_resources(app="sha256").luts

    def test_pcim_sharing_costs_extra(self):
        plain = shim_resources(app="dram_dma")
        shared = shim_resources(app="dram_dma", app_uses_pcim=True)
        assert shared.luts > plain.luts
        assert shared.ffs > plain.ffs

    def test_every_table2_row_under_seven_percent(self):
        for key in APPS:
            report = shim_resources(app=key, app_uses_pcim=(key == "dram_dma"))
            assert report.lut_pct < 7.0
            assert report.ff_pct < 7.0
            assert report.bram_pct < 7.0

    def test_matches_paper_within_tolerance(self):
        for key, spec in APPS.items():
            report = shim_resources(app=key, app_uses_pcim=(key == "dram_dma"))
            assert report.lut_pct == pytest.approx(spec.paper.lut_pct, abs=0.4)
            assert report.ff_pct == pytest.approx(spec.paper.ff_pct, abs=0.4)


class TestFig7Sweep:
    def test_eleven_combinations(self):
        sweep = fig7_sweep()
        assert len(sweep) == 11
        assert set(sweep) == set(FIG7_COMBINATIONS)

    def test_width_range(self):
        sweep = fig7_sweep()
        widths = [r.monitored_bits for r in sweep.values()]
        assert min(widths) == 136
        assert max(widths) == 3056

    def test_monotone_in_width(self):
        sweep = sorted(fig7_sweep().values(), key=lambda r: r.monitored_bits)
        for a, b in zip(sweep, sweep[1:]):
            assert b.luts >= a.luts
            assert b.ffs >= a.ffs
            assert b.bram_blocks >= a.bram_blocks

    def test_single_lite_interface_is_cheap(self):
        sda = shim_resources(interfaces=("sda",))
        full = shim_resources()
        assert sda.lut_pct < 0.35 * full.lut_pct
