"""Tests for the flight recorder: dedup dictionary, v3 frame container,
ring-buffer retention, and wrap-boundary suffix replay."""

import os
import random
import zlib

import pytest

from repro.core.decoder import expand_dedup_stream
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.mutation import (
    V3_FRAME_REGIONS,
    corrupt_backref,
    corrupt_v3_frame,
)
from repro.core.packets import (
    DEDUP_MIN_BYTES,
    DEDUP_SLOT_BYTES,
    CyclePacket,
    DedupDict,
)
from repro.core.trace_file import (
    FRAME_ANCHOR,
    FRAME_END,
    FRAME_RUN,
    TraceFile,
    TraceWriter,
    build_v3_container,
)
from repro.core.trace_ring import RingTraceStore
from repro.errors import ConfigError, TraceFormatError, TraceIntegrityError


def small_table() -> ChannelTable:
    return ChannelTable([
        ChannelInfo(index=0, name="a.req", direction="in",
                    content_bytes=8, payload_bits=64),
        ChannelInfo(index=1, name="a.rsp", direction="out",
                    content_bytes=8, payload_bits=64),
    ])


def repetitive_trace(n_packets: int = 24, distinct: int = 3) -> TraceFile:
    """A trace whose contents repeat, so dedup emits real backrefs."""
    table = small_table()
    packets = []
    for i in range(n_packets):
        packet = CyclePacket(starts=1, ends=2)
        packet.contents[0] = (i % distinct).to_bytes(8, "little")
        packet.validation[1] = (i % distinct * 7).to_bytes(8, "little")
        packets.append(packet)
    return TraceFile.from_packets(table, packets, metadata={"app": "unit"})


class TestDedupDict:
    def test_ascending_slots_then_lru_eviction(self):
        dedup = DedupDict(slots=2)
        assert dedup.insert(b"aaaa") == 0
        assert dedup.insert(b"bbbb") == 1
        # Touch slot 0, so the LRU victim is slot 1.
        assert dedup.find(b"aaaa") == 0
        assert dedup.insert(b"cccc") == 1
        assert dedup.find(b"bbbb") is None
        assert dedup.get(1) == b"cccc"
        assert dedup.evictions == 1

    def test_get_rejects_out_of_range_and_unwritten_slots(self):
        dedup = DedupDict(slots=4)
        dedup.insert(b"xxxx")
        with pytest.raises(TraceFormatError):
            dedup.get(1)            # in range, never written
        with pytest.raises(TraceFormatError):
            dedup.get(4)            # out of range
        with pytest.raises(TraceFormatError):
            dedup.get(-1)

    def test_clear_resets_slots_but_not_counters(self):
        dedup = DedupDict(slots=2)
        dedup.insert(b"aaaa")
        dedup.find(b"aaaa")
        dedup.clear()
        assert dedup.find(b"aaaa") is None
        with pytest.raises(TraceFormatError):
            dedup.get(0)
        assert dedup.insert(b"bbbb") == 0   # slot numbering restarts
        assert dedup.inserts == 2           # cumulative stats survive

    def test_capacity_bounds(self):
        with pytest.raises(TraceFormatError):
            DedupDict(slots=0)
        with pytest.raises(TraceFormatError):
            DedupDict(slots=(1 << (8 * DEDUP_SLOT_BYTES)) + 1)


class TestDedupStream:
    def _streams(self, trace: TraceFile, slots: int = 8):
        """(flat body, dedup-coded stream) for the same packet sequence."""
        table = trace.table
        dedup = DedupDict(slots=slots)
        flat, coded = bytearray(), bytearray()
        for packet in trace.packets():
            packet.serialize_into(flat, table, True)
            packet.serialize_into(coded, table, True, dedup=dedup)
        return bytes(flat), bytes(coded)

    def test_round_trip_is_byte_identical_to_flat(self):
        trace = repetitive_trace(24)
        flat, coded = self._streams(trace)
        assert len(coded) < len(flat)          # repeats actually dedup
        out = bytearray()
        n, consumed = expand_dedup_stream(coded, trace.table, True,
                                          DedupDict(slots=8), out)
        assert n == trace.packet_count
        assert consumed == len(coded)
        assert bytes(out) == flat == bytes(trace.body)

    def test_round_trip_survives_lru_eviction(self):
        # More distinct payloads than slots: both sides must evict in
        # lockstep for the expansion to stay correct.
        trace = repetitive_trace(40, distinct=6)
        flat, coded = self._streams(trace, slots=2)
        out = bytearray()
        expand_dedup_stream(coded, trace.table, True, DedupDict(slots=2), out)
        assert bytes(out) == flat

    def test_backref_into_fresh_dictionary_is_detected(self):
        # Decode only the tail of a coded stream: its backrefs point at
        # slots a fresh dictionary never wrote.
        trace = repetitive_trace(6, distinct=1)
        _, coded = self._streams(trace)
        first = bytearray()
        packet = trace.packets()[0]
        packet.serialize_into(first, trace.table, True,
                              dedup=DedupDict(slots=8))
        tail = coded[len(first):]
        with pytest.raises(TraceFormatError):
            expand_dedup_stream(tail, trace.table, True, DedupDict(slots=8),
                                bytearray())
        n, consumed = expand_dedup_stream(tail, trace.table, True,
                                          DedupDict(slots=8), bytearray(),
                                          tolerate_tail=True)
        assert (n, consumed) == (0, 0)


class TestV3RoundTrip:
    def test_round_trip(self):
        trace = repetitive_trace(24)
        blob = trace.to_bytes(version=3)
        assert blob[:8] == b"VIDITRC3"
        loaded = TraceFile.from_bytes(blob)
        assert loaded.format_version == 3
        assert bytes(loaded.body) == bytes(trace.body)
        assert loaded.table.to_dict() == trace.table.to_dict()
        assert loaded.metadata["app"] == "unit"
        assert not loaded.salvaged

    def test_container_stats_report_dedup_and_compression(self):
        trace = repetitive_trace(24)
        loaded = TraceFile.from_bytes(trace.to_bytes(version=3))
        stats = loaded.container_stats
        assert stats["format"] == 3
        assert stats["packets"] == trace.packet_count
        assert stats["backrefs"] > 0
        assert stats["literals"] > 0
        assert stats["anchors"] >= 1
        assert stats["body_bytes"] == len(trace.body)

    def test_truncation_salvages_anchor_led_prefix(self):
        trace = repetitive_trace(24)
        blob = trace.to_bytes(version=3)
        cut = len(blob) - 9     # inside the last RUN frame / END marker
        with pytest.raises(TraceFormatError):
            TraceFile.from_bytes(blob[:cut])
        salvaged = TraceFile.from_bytes(blob[:cut], salvage=True)
        assert salvaged.salvaged
        assert 0 < salvaged.packet_count <= trace.packet_count
        assert bytes(trace.body).startswith(bytes(salvaged.body))


class TestV3Corruption:
    def test_corruption_never_silently_accepted(self):
        """Mirror of the v2 ``corrupt_frame`` property: damage any region
        of a v3 container and the loader either raises a typed error or
        loads content identical to the original — never silently wrong."""
        trace = repetitive_trace(24)
        blob = trace.to_bytes(version=3)
        rng = random.Random(7)
        for round_index in range(6):
            for region in V3_FRAME_REGIONS:
                description, damaged = corrupt_v3_frame(blob, rng,
                                                        region=region)
                try:
                    loaded = TraceFile.from_bytes(damaged)
                except TraceFormatError:
                    continue
                assert bytes(loaded.body) == bytes(trace.body), description
                assert loaded.table.to_dict() == trace.table.to_dict(), \
                    description

    def test_corrupt_backref_passes_crc_fails_decode(self):
        """The backref mutant re-frames with valid CRCs — only the dedup
        decode itself can reject it (the hole the v2 fuzzer cannot poke)."""
        trace = repetitive_trace(24)
        blob = trace.to_bytes(version=3)
        description, damaged = corrupt_backref(blob, random.Random(3))
        assert "backref" in description
        with pytest.raises(TraceFormatError):
            TraceFile.from_bytes(damaged)
        # Salvage still recovers the intact packets before the poisoned
        # backref (possibly zero if it poisoned the first one).
        salvaged = TraceFile.from_bytes(damaged, salvage=True)
        assert salvaged.salvaged
        assert salvaged.packet_count < trace.packet_count
        assert bytes(trace.body).startswith(bytes(salvaged.body))

    def test_trace_without_repeats_has_no_backrefs_to_corrupt(self):
        table = small_table()
        packets = []
        for i in range(4):
            packet = CyclePacket(starts=1, ends=1)
            packet.contents[0] = (1000 + i).to_bytes(8, "little")
            packets.append(packet)
        trace = TraceFile.from_packets(table, packets)
        with pytest.raises(ConfigError):
            corrupt_backref(trace.to_bytes(version=3), random.Random(0))


def feed_ring(ring: RingTraceStore, table: ChannelTable, n_packets: int,
              anchor_every: int, slots: int = 8):
    """Feed a dedup-coded packet stream with periodic re-anchors.

    Mirrors the deployment's contract: the encoder's dictionary is reset
    at the exact packet boundary the anchor watermark is taken at. Returns
    the flat (un-deduped) per-packet bodies for reference.
    """
    dedup = DedupDict(slots=slots)
    flats = []
    for i in range(n_packets):
        packet = CyclePacket(starts=1, ends=2)
        packet.contents[0] = (i % 3).to_bytes(8, "little")
        packet.validation[1] = (i % 3 * 7).to_bytes(8, "little")
        flat, coded = bytearray(), bytearray()
        packet.serialize_into(flat, table, True)
        packet.serialize_into(coded, table, True, dedup=dedup)
        ring.accept(bytes(coded))
        flats.append(bytes(flat))
        if (i + 1) % anchor_every == 0 and i + 1 < n_packets:
            dedup.clear()
            ring.request_anchor(ordinal=i + 1, cycle=i + 1, checkpoint=None)
    ring.flush()
    return flats


class TestRingTraceStore:
    def test_starts_with_genesis_anchor_and_ends_with_end_frame(self):
        ring = RingTraceStore("ring", retain_words=64)
        frames = ring.frame_list()
        assert frames and frames[0][0] == FRAME_ANCHOR
        stream = ring.frame_stream(end=True)
        assert stream[-9] == FRAME_END

    def test_no_eviction_window_expands_to_full_stream(self):
        table = small_table()
        ring = RingTraceStore("ring", retain_words=1 << 16)
        flats = feed_ring(ring, table, 30, anchor_every=10)
        assert ring.evicted_epochs == 0
        body, start, info = ring.expand(table, True, 8)
        assert start["ordinal"] == 0 and start["checkpoint"] is None
        assert bytes(body) == b"".join(flats)
        assert info["packets"] == 30

    def test_eviction_is_epoch_granular_and_anchor_led(self):
        table = small_table()
        ring = RingTraceStore("ring", retain_words=8)   # tiny budget
        flats = feed_ring(ring, table, 60, anchor_every=10)
        assert ring.evicted_epochs > 0
        frames = ring.frame_list()
        assert frames[0][0] == FRAME_ANCHOR
        body, start, info = ring.expand(table, True, 8)
        k = start["ordinal"]
        assert k > 0 and k % 10 == 0     # an anchor boundary, not mid-epoch
        # The retained window is the exact suffix of the flat stream.
        assert bytes(body) == b"".join(flats[k:])

    def test_last_epoch_is_never_evicted(self):
        table = small_table()
        ring = RingTraceStore("ring", retain_words=1)   # can't hold anything
        feed_ring(ring, table, 40, anchor_every=8)
        body, start, info = ring.expand(table, True, 8)
        assert start["ordinal"] == 32                   # last anchor only
        assert info["packets"] == 8

    def test_reset_state_returns_to_genesis(self):
        table = small_table()
        ring = RingTraceStore("ring", retain_words=8)
        feed_ring(ring, table, 40, anchor_every=8)
        ring.reset_state()
        assert ring.evicted_epochs == 0
        frames = ring.frame_list()
        assert len(frames) == 1 and frames[0][0] == FRAME_ANCHOR
        body, start, _ = ring.expand(table, True, 8)
        assert len(body) == 0 and start["ordinal"] == 0

    def test_torn_frame_at_wrap_salvages_to_anchor_led_suffix(self):
        """Satellite 3: a container torn mid-frame after the ring wrapped
        still salvages to a window led by a later re-anchor."""
        table = small_table()
        ring = RingTraceStore("ring", retain_words=8, run_bytes=64)
        flats = feed_ring(ring, table, 60, anchor_every=10)
        assert ring.evicted_epochs > 0
        blob = build_v3_container(table, True, {"app": "unit"},
                                  ring.frame_stream(end=True), 8)
        intact = TraceFile.from_bytes(blob)
        first_kept = intact.metadata["ring"]["ordinal"]
        # Tear the first retained epoch: flip a byte in its first RUN
        # payload, so salvage must resync to the *next* ANCHOR frame.
        damaged = bytearray(blob)
        run_at = damaged.index(bytes([FRAME_RUN]),
                               8 + 8 + 4 + int.from_bytes(blob[8:16],
                                                          "little"))
        damaged[run_at + 9] ^= 0xFF
        with pytest.raises(TraceFormatError):
            TraceFile.from_bytes(bytes(damaged))
        salvaged = TraceFile.from_bytes(bytes(damaged), salvage=True)
        assert salvaged.salvaged
        k = salvaged.metadata["ring"]["ordinal"]
        assert k > first_kept and k % 10 == 0
        assert bytes(salvaged.body) == b"".join(flats[k:])


class TestTraceWriterDurability:
    def test_close_fsyncs_file_then_parent_directory(self, tmp_path,
                                                     monkeypatch):
        """The atomic-rename publish is only durable if both the part file
        and the parent directory are fsynced before/after the rename."""
        synced = []
        real_fsync = os.fsync

        def spy_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        trace = repetitive_trace(5)
        path = tmp_path / "durable.trace"
        with TraceWriter(path, trace.table) as writer:
            writer.append(bytes(trace.body))
        assert path.exists()
        assert len(synced) >= 2     # data file + parent directory
        assert bytes(TraceFile.load(path).body) == bytes(trace.body)


class TestFlightRecorderEndToEnd:
    """Record/replay the DMA app under flight-recorder mode and pin the
    wrap-boundary replay guarantees (acceptance criteria)."""

    SEED = 5

    @pytest.fixture(scope="class")
    def recordings(self):
        from repro.apps.registry import get_app
        from repro.core import VidiConfig
        from repro.harness.runner import bench_config, record_run

        spec = get_app("dram_dma")
        full = record_run(
            spec, bench_config(VidiConfig.r2, flight_recorder=True),
            seed=self.SEED)
        small = record_run(
            spec, bench_config(VidiConfig.r2, flight_recorder=True,
                               flight_retain_words=512,
                               flight_anchor_stride=512),
            seed=self.SEED)
        return spec, full, small

    def test_wrapped_window_carries_reanchor_checkpoint(self, recordings):
        _, full, small = recordings
        assert full.result["trace"].metadata.get("ring") is None
        assert small.result["flight"]["evicted_epochs"] > 0
        ring = small.result["trace"].metadata["ring"]
        assert ring["ordinal"] > 0
        assert ring["checkpoint"]       # architectural state to restore
        assert small.result["flight"]["retained_words"] <= \
            2 * small.result["flight"]["retain_words"]

    def test_retention_budget_does_not_perturb_recording(self, recordings):
        """Framing/eviction are host-side: a small-retention flight trace
        is byte-identical to the same window carved out of an unbounded
        flight recording of the same run."""
        _, full, small = recordings
        full_trace = full.result["trace"]
        small_trace = small.result["trace"]
        k = small_trace.metadata["ring"]["ordinal"]
        carved = full_trace.index().slice(k, full_trace.packet_count)
        assert bytes(small_trace.body) == bytes(carved)

    def test_flight_blob_round_trips_with_ring_metadata(self, recordings):
        _, _, small = recordings
        loaded = TraceFile.from_bytes(small.result["flight_blob"])
        assert loaded.format_version == 3
        assert bytes(loaded.body) == bytes(small.result["trace"].body)
        ring = loaded.metadata["ring"]
        assert ring["ordinal"] == \
            small.result["trace"].metadata["ring"]["ordinal"]
        assert ring["checkpoint"]

    @pytest.mark.parametrize("scheduler", ["event", "fixpoint", "compiled"])
    def test_suffix_replay_matches_carved_window_replay(self, recordings,
                                                        scheduler):
        """The acceptance property: replaying the ring suffix is
        bit-identical to replaying the same window of the full trace,
        under every scheduler."""
        from repro.harness.runner import replay_run

        spec, full, small = recordings
        full_trace = full.result["trace"]
        small_trace = small.result["trace"]
        ring = small_trace.metadata["ring"]
        carved = TraceFile(
            table=full_trace.table,
            body=full_trace.index().slice(ring["ordinal"],
                                          full_trace.packet_count),
            with_validation=full_trace.with_validation,
            metadata={**full_trace.metadata, "ring": ring})
        suffix_replay = replay_run(spec, small_trace, scheduler=scheduler)
        carved_replay = replay_run(spec, carved, scheduler=scheduler)
        assert bytes(suffix_replay.result["validation"].body) == \
            bytes(carved_replay.result["validation"].body)
        assert suffix_replay.cycles == carved_replay.cycles

    def test_torn_flight_blob_salvages_and_replays(self, recordings):
        """Crash mid-write after wrap: the salvaged suffix still replays."""
        from repro.harness.runner import replay_run

        spec, _, small = recordings
        blob = small.result["flight_blob"]
        cut = len(blob) - 24        # tear inside the trailing frames
        salvaged = TraceFile.from_bytes(blob[:cut], salvage=True)
        assert salvaged.salvaged
        assert salvaged.metadata["ring"]["checkpoint"]
        assert 0 < salvaged.packet_count <= small.result["trace"].packet_count
        replay = replay_run(spec, salvaged)
        assert replay.result["validation"].packet_count > 0
