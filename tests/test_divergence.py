"""Unit tests for divergence detection (§3.6) on hand-built traces."""

import pytest

from repro.core.divergence import compare_traces
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.packets import CyclePacket
from repro.core.trace_file import TraceFile
from repro.errors import ConfigError


def table():
    return ChannelTable([
        ChannelInfo(index=0, name="in0", direction="in", content_bytes=1,
                    payload_bits=8),
        ChannelInfo(index=1, name="out0", direction="out", content_bytes=1,
                    payload_bits=8),
        ChannelInfo(index=2, name="out1", direction="out", content_bytes=1,
                    payload_bits=8),
    ])


def trace(packets):
    return TraceFile.from_packets(table(), packets, with_validation=True)


def end(ch, content):
    return CyclePacket(ends=1 << ch, validation={ch: content})


class TestCompareTraces:
    def test_identical_traces_clean(self):
        t = trace([end(1, b"\x01"), end(2, b"\x02"), end(1, b"\x03")])
        report = compare_traces(t, t)
        assert report.clean
        assert report.output_transactions == 3
        assert "no divergences" in report.summary()

    def test_content_divergence_detected(self):
        ref = trace([end(1, b"\x01"), end(1, b"\x02")])
        val = trace([end(1, b"\x01"), end(1, b"\xff")])
        report = compare_traces(ref, val)
        assert len(report.of_kind("content")) == 1
        d = report.of_kind("content")[0]
        assert d.channel == "out0" and d.occurrence == 1
        assert report.content_divergence_rate == pytest.approx(0.5)

    def test_count_divergence_detected(self):
        ref = trace([end(1, b"\x01"), end(1, b"\x02")])
        val = trace([end(1, b"\x01")])
        report = compare_traces(ref, val)
        assert report.of_kind("count")

    def test_ordering_inversion_detected(self):
        # Recorded: out0 end, then out1 end. Replayed: out1 first.
        ref = trace([end(1, b"\x01"), end(2, b"\x02")])
        val = trace([end(2, b"\x02"), end(1, b"\x01")])
        report = compare_traces(ref, val)
        assert report.of_kind("ordering")

    def test_concurrent_to_ordered_is_not_divergence(self):
        # Recorded simultaneously (one packet); replayed sequentially.
        ref = trace([CyclePacket(ends=0b110,
                                 validation={1: b"\x01", 2: b"\x02"})])
        val = trace([end(1, b"\x01"), end(2, b"\x02")])
        report = compare_traces(ref, val)
        assert report.clean

    def test_input_ends_ignored(self):
        """Validation traces carry no input ends; they must not be compared."""
        ref = trace([CyclePacket(starts=0b001, ends=0b001,
                                 contents={0: b"\x09"}),
                     end(1, b"\x01")])
        val = trace([end(1, b"\x01")])
        report = compare_traces(ref, val)
        assert report.clean

    def test_mismatched_tables_rejected(self):
        other = ChannelTable([ChannelInfo(index=0, name="x", direction="out",
                                          content_bytes=1, payload_bits=8)])
        t1 = trace([end(1, b"\x00")])
        t2 = TraceFile.from_packets(
            other, [CyclePacket(ends=1, validation={0: b"\x00"})])
        with pytest.raises(ConfigError):
            compare_traces(t1, t2)

    def test_traces_without_contents_rejected(self):
        t1 = trace([end(1, b"\x00")])
        bare = TraceFile.from_packets(table(), [CyclePacket(ends=0b010)],
                                      with_validation=False)
        with pytest.raises(ConfigError):
            compare_traces(t1, bare)

    def test_rate_zero_when_no_transactions(self):
        report = compare_traces(trace([end(1, b"\x00")][:0] or
                                      [CyclePacket(starts=1, contents={0: b"\x00"})]),
                                trace([CyclePacket(starts=1, contents={0: b"\x00"})]))
        assert report.output_transactions == 0
        assert report.content_divergence_rate == 0.0

    def test_summary_truncates_long_reports(self):
        ref = trace([end(1, bytes([i])) for i in range(30)])
        val = trace([end(1, bytes([i + 100])) for i in range(30)])
        report = compare_traces(ref, val)
        assert "more" in report.summary()
