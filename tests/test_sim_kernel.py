"""Unit tests for the simulation kernel: signals, modules, scheduler."""

import pytest

from repro.errors import CombinationalLoopError, SimulationError, WatchdogTimeout
from repro.sim import Module, Signal, Simulator


@pytest.fixture(params=["event", "fixpoint"])
def scheduler(request):
    """Run kernel-semantics tests under both settling schedulers."""
    return request.param


class Counter(Module):
    """Registered counter used to validate seq/commit semantics."""

    has_comb = False

    def __init__(self, name="counter", width=8):
        super().__init__(name)
        self.count = self.signal("count", width=width)

    def seq(self):
        self.count.set_next(self.count.value + 1)


class Inverter(Module):
    """Combinational inverter: out = ~inp (1 bit)."""

    def __init__(self, name, inp, out):
        super().__init__(name)
        self.inp = inp
        self.out = out

    def comb(self):
        self.out.drive(0 if self.inp.value else 1)


class TestSignal:
    def test_width_masking_on_drive(self):
        sim = Simulator()
        mod = Module("m")
        sig = mod.signal("s", width=4)
        sim.add(mod)
        sim.elaborate()
        sig.drive(0x1F)
        assert sig.value == 0xF

    def test_set_next_not_visible_until_commit(self):
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        sim.elaborate()
        assert counter.count.value == 0
        sim.step()
        assert counter.count.value == 1
        sim.step()
        assert counter.count.value == 2

    def test_counter_wraps_at_width(self):
        sim = Simulator()
        counter = Counter(width=2)
        sim.add(counter)
        sim.run(5)
        assert counter.count.value == 1  # 5 mod 4

    def test_invalid_width_rejected(self):
        with pytest.raises(SimulationError):
            Signal("bad", width=0)

    def test_set_next_before_elaboration_rejected(self):
        mod = Module("m")
        sig = mod.signal("s")
        with pytest.raises(SimulationError):
            sig.set_next(1)

    def test_bit_accessor(self):
        sim = Simulator()
        mod = Module("m")
        sig = mod.signal("s", width=8)
        sim.add(mod)
        sim.elaborate()
        sig.drive(0b1010_0001)
        assert sig.bit(0) == 1
        assert sig.bit(1) == 0
        assert sig.bit(7) == 1

    def test_double_bind_rejected(self):
        sig = Signal("s")
        sig.bind(Simulator())
        with pytest.raises(SimulationError):
            sig.bind(Simulator())

    def test_rebind_same_simulator_ok(self):
        sim = Simulator()
        sig = Signal("s")
        sig.bind(sim)
        sig.bind(sim)  # idempotent


class SensInverter(Module):
    """Inverter with a declared sensitivity list (event-scheduled)."""

    comb_static = True

    def __init__(self, name, inp, out):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.sensitive_to(inp)

    def comb(self):
        self.out.drive(0 if self.inp.value else 1)


class TestCombinationalSettling:
    def test_chain_of_inverters_settles(self, scheduler):
        """A 3-deep comb chain needs multiple delta passes to settle."""
        sim = Simulator(scheduler=scheduler)
        top = Module("top")
        a = top.signal("a")
        b = top.signal("b")
        c = top.signal("c")
        d = top.signal("d")
        # Deliberately add in reverse dependency order to force delta passes.
        top.submodule(Inverter("i3", c, d))
        top.submodule(Inverter("i2", b, c))
        top.submodule(Inverter("i1", a, b))
        sim.add(top)
        sim.step()
        assert (b.value, c.value, d.value) == (1, 0, 1)
        a.drive(1)
        sim.step()
        assert (b.value, c.value, d.value) == (0, 1, 0)

    def test_declared_chain_of_inverters_settles(self, scheduler):
        """Same chain, but every stage declares its sensitivity."""
        sim = Simulator(scheduler=scheduler)
        top = Module("top")
        a = top.signal("a")
        b = top.signal("b")
        c = top.signal("c")
        d = top.signal("d")
        top.submodule(SensInverter("i3", c, d))
        top.submodule(SensInverter("i2", b, c))
        top.submodule(SensInverter("i1", a, b))
        sim.add(top)
        sim.step()
        assert (b.value, c.value, d.value) == (1, 0, 1)
        a.drive(1)
        sim.step()
        assert (b.value, c.value, d.value) == (0, 1, 0)

    def test_cross_coupled_inverters_settle_as_latch(self, scheduler):
        """x=~y, y=~x has stable solutions; the delta loop finds one."""
        sim = Simulator(max_delta=8, scheduler=scheduler)
        top = Module("top")
        x = top.signal("x")
        y = top.signal("y")
        top.submodule(Inverter("i1", x, y))
        top.submodule(Inverter("i2", y, x))
        sim.add(top)
        sim.step()
        assert x.value != y.value

    def test_combinational_loop_detected(self, scheduler):
        """x = ~x oscillates forever and must be flagged."""
        sim = Simulator(max_delta=8, scheduler=scheduler)
        top = Module("top")
        x = top.signal("x")
        top.submodule(Inverter("i", x, x))
        sim.add(top)
        with pytest.raises(CombinationalLoopError):
            sim.step()

    def test_declared_combinational_loop_detected(self):
        """The event work-list also bounds oscillation at max_delta."""
        sim = Simulator(max_delta=8)
        top = Module("top")
        x = top.signal("x")
        top.submodule(SensInverter("i", x, x))
        sim.add(top)
        with pytest.raises(CombinationalLoopError):
            sim.step()


class TestSimulatorControl:
    def test_run_until_returns_elapsed_cycles(self):
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        elapsed = sim.run_until(lambda: counter.count.value == 10, max_cycles=100)
        assert elapsed == 10

    def test_run_until_raises_watchdog(self):
        sim = Simulator()
        counter = Counter(width=2)
        sim.add(counter)
        with pytest.raises(WatchdogTimeout):
            sim.run_until(lambda: counter.count.value == 9, max_cycles=50)

    def test_add_after_elaborate_rejected(self):
        sim = Simulator()
        sim.add(Counter("c1"))
        sim.elaborate()
        with pytest.raises(SimulationError):
            sim.add(Counter("c2"))

    def test_reset_restores_power_on_state(self):
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        sim.run(7)
        sim.reset()
        assert sim.cycle == 0
        assert counter.count.value == 0
        sim.run(3)
        assert counter.count.value == 3

    def test_cycle_hook_called_each_cycle(self):
        sim = Simulator()
        sim.add(Counter())
        seen = []
        sim.add_cycle_hook(seen.append)
        sim.run(4)
        assert seen == [1, 2, 3, 4]

    def test_submodule_flattening(self):
        sim = Simulator()
        top = Module("top")
        inner = top.submodule(Counter("inner"))
        sim.add(top)
        sim.run(2)
        assert inner.count.value == 2


class TestSchedulerSelection:
    def test_default_is_event(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
        assert Simulator.DEFAULT_SCHEDULER == "event"
        assert Simulator().scheduler == "event"

    def test_environment_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "fixpoint")
        assert Simulator().scheduler == "fixpoint"

    def test_argument_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "fixpoint")
        assert Simulator(scheduler="event").scheduler == "event"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(scheduler="speculative")


class PythonStateComb(Module):
    """Comb process reading module-level Python state, not signals.

    The module opts into event scheduling with an empty sensitivity list
    and wakes itself whenever the state it reads changes — the pattern the
    platform models (AXI endpoints, host memory) use.
    """

    comb_static = True

    def __init__(self, name, out):
        super().__init__(name)
        self.out = out
        self.level = 0
        self.comb_calls = 0
        self.sensitive_to()

    def set_level(self, value):
        self.level = value
        self.wake()

    def comb(self):
        self.comb_calls += 1
        self.out.drive(self.level)


class TestEventScheduling:
    def test_quiescent_cycles_skip_settling(self):
        """Stable inputs: after the first cycle the work-list stays empty,
        settling is skipped entirely, and seq() still runs every cycle."""
        sim = Simulator(scheduler="event")
        top = Module("top")
        a = top.signal("a")
        b = top.signal("b")
        top.submodule(SensInverter("inv", a, b))
        counter = top.submodule(Counter())
        sim.add(top)
        sim.run(10)
        assert b.value == 1
        assert counter.count.value == 10   # seq is never skipped
        assert sim.quiescent_cycles == 9   # only the first cycle settled

    def test_signal_change_ends_quiescence(self):
        sim = Simulator(scheduler="event")
        top = Module("top")
        a = top.signal("a")
        b = top.signal("b")
        top.submodule(SensInverter("inv", a, b))
        sim.add(top)
        sim.run(5)
        quiescent_before = sim.quiescent_cycles
        a.drive(1)   # enqueues the inverter via the fanout list
        sim.step()
        assert b.value == 0
        assert sim.quiescent_cycles == quiescent_before

    def test_undeclared_module_evaluates_every_cycle(self):
        """Safety fallback: no sensitivity declaration means every pass."""
        sim = Simulator(scheduler="event")
        top = Module("top")
        a = top.signal("a")
        b = top.signal("b")
        top.submodule(Inverter("inv", a, b))
        sim.add(top)
        sim.run(5)
        assert sim.quiescent_cycles == 0

    def test_wake_reschedules_python_state_comb(self):
        sim = Simulator(scheduler="event")
        top = Module("top")
        out = top.signal("out", width=8)
        mod = top.submodule(PythonStateComb("m", out))
        sim.add(top)
        sim.step()
        assert out.value == 0
        calls = mod.comb_calls
        sim.run(3)   # no wake: the module must not re-evaluate
        assert mod.comb_calls == calls
        mod.set_level(7)
        sim.step()
        assert out.value == 7
        assert mod.comb_calls == calls + 1

    def test_dynamic_declared_module_auto_woken(self):
        """comb_static=False (the default) declared modules re-evaluate
        once per cycle even when no declared input changed."""

        class DynComb(Module):
            def __init__(self, name, inp, out):
                super().__init__(name)
                self.inp = inp
                self.out = out
                self.comb_calls = 0
                self.sensitive_to(inp)

            def comb(self):
                self.comb_calls += 1
                self.out.drive(self.inp.value)

        sim = Simulator(scheduler="event")
        top = Module("top")
        a = top.signal("a")
        b = top.signal("b")
        mod = top.submodule(DynComb("dyn", a, b))
        sim.add(top)
        sim.run(5)
        assert mod.comb_calls >= 5

    def test_wake_before_elaboration_is_safe(self):
        top = Module("top")
        out = top.signal("out", width=8)
        mod = PythonStateComb("m", out)
        top.submodule(mod)
        mod.set_level(3)   # wake() before bind(): must be a no-op, not a crash
        sim = Simulator(scheduler="event")
        sim.add(top)
        sim.step()
        assert out.value == 3


class TestRunUntilSemantics:
    def test_true_exactly_at_max_cycles_succeeds(self):
        """The boundary case: satisfied on the very last permitted step."""
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        elapsed = sim.run_until(lambda: counter.count.value == 5, max_cycles=5)
        assert elapsed == 5

    def test_predicate_evaluated_once_per_boundary(self):
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        calls = []

        def predicate():
            calls.append(sim.cycle)
            return counter.count.value == 3

        assert sim.run_until(predicate, max_cycles=10) == 3
        assert calls == [0, 1, 2, 3]   # start boundary + one per step

    def test_timeout_does_not_reevaluate_predicate(self):
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        calls = []

        def predicate():
            calls.append(sim.cycle)
            return False

        with pytest.raises(WatchdogTimeout):
            sim.run_until(predicate, max_cycles=4)
        assert calls == [0, 1, 2, 3, 4]   # exactly once per boundary

    def test_already_true_consumes_no_cycles(self):
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        assert sim.run_until(lambda: True, max_cycles=5) == 0
        assert sim.cycle == 0


class TestResetSchedulerState:
    def test_reset_discards_staged_next_values(self, scheduler):
        """A set_next staged before reset must not leak into the next run."""
        sim = Simulator(scheduler=scheduler)
        counter = Counter()
        sim.add(counter)
        sim.elaborate()
        counter.count.set_next(42)   # staged but never committed
        sim.reset()
        sim.step()
        assert counter.count.value == 1   # not 43, not 42

    def test_reset_reseeds_event_worklist(self):
        """After reset every declared module re-evaluates on the first step,
        even though its inputs are back at their power-on values."""
        sim = Simulator(scheduler="event")
        top = Module("top")
        a = top.signal("a")
        b = top.signal("b")
        top.submodule(SensInverter("inv", a, b))
        sim.add(top)
        sim.run(3)
        assert b.value == 1
        sim.reset()
        assert b.value == 0   # power-on state
        sim.step()
        assert b.value == 1   # recomputed without any input edge

    def test_reset_clears_pending_wake(self):
        sim = Simulator(scheduler="event")
        top = Module("top")
        out = top.signal("out", width=8)
        mod = top.submodule(PythonStateComb("m", out))
        sim.add(top)
        sim.run(2)
        mod.set_level(9)   # wakes the module...
        sim.reset()        # ...but reset discards the pending evaluation
        assert mod.level == 9   # reset_state does not touch app state here
        sim.step()
        assert out.value == 9   # re-seeded work-list evaluates everything once
