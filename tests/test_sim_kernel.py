"""Unit tests for the simulation kernel: signals, modules, scheduler."""

import pytest

from repro.errors import CombinationalLoopError, SimulationError, WatchdogTimeout
from repro.sim import Module, Signal, Simulator


class Counter(Module):
    """Registered counter used to validate seq/commit semantics."""

    has_comb = False

    def __init__(self, name="counter", width=8):
        super().__init__(name)
        self.count = self.signal("count", width=width)

    def seq(self):
        self.count.set_next(self.count.value + 1)


class Inverter(Module):
    """Combinational inverter: out = ~inp (1 bit)."""

    def __init__(self, name, inp, out):
        super().__init__(name)
        self.inp = inp
        self.out = out

    def comb(self):
        self.out.drive(0 if self.inp.value else 1)


class TestSignal:
    def test_width_masking_on_drive(self):
        sim = Simulator()
        mod = Module("m")
        sig = mod.signal("s", width=4)
        sim.add(mod)
        sim.elaborate()
        sig.drive(0x1F)
        assert sig.value == 0xF

    def test_set_next_not_visible_until_commit(self):
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        sim.elaborate()
        assert counter.count.value == 0
        sim.step()
        assert counter.count.value == 1
        sim.step()
        assert counter.count.value == 2

    def test_counter_wraps_at_width(self):
        sim = Simulator()
        counter = Counter(width=2)
        sim.add(counter)
        sim.run(5)
        assert counter.count.value == 1  # 5 mod 4

    def test_invalid_width_rejected(self):
        with pytest.raises(SimulationError):
            Signal("bad", width=0)

    def test_set_next_before_elaboration_rejected(self):
        mod = Module("m")
        sig = mod.signal("s")
        with pytest.raises(SimulationError):
            sig.set_next(1)

    def test_bit_accessor(self):
        sim = Simulator()
        mod = Module("m")
        sig = mod.signal("s", width=8)
        sim.add(mod)
        sim.elaborate()
        sig.drive(0b1010_0001)
        assert sig.bit(0) == 1
        assert sig.bit(1) == 0
        assert sig.bit(7) == 1

    def test_double_bind_rejected(self):
        sig = Signal("s")
        sig.bind(Simulator())
        with pytest.raises(SimulationError):
            sig.bind(Simulator())

    def test_rebind_same_simulator_ok(self):
        sim = Simulator()
        sig = Signal("s")
        sig.bind(sim)
        sig.bind(sim)  # idempotent


class TestCombinationalSettling:
    def test_chain_of_inverters_settles(self):
        """A 3-deep comb chain needs multiple delta passes to settle."""
        sim = Simulator()
        top = Module("top")
        a = top.signal("a")
        b = top.signal("b")
        c = top.signal("c")
        d = top.signal("d")
        # Deliberately add in reverse dependency order to force delta passes.
        top.submodule(Inverter("i3", c, d))
        top.submodule(Inverter("i2", b, c))
        top.submodule(Inverter("i1", a, b))
        sim.add(top)
        sim.step()
        assert (b.value, c.value, d.value) == (1, 0, 1)
        a.drive(1)
        sim.step()
        assert (b.value, c.value, d.value) == (0, 1, 0)

    def test_cross_coupled_inverters_settle_as_latch(self):
        """x=~y, y=~x has stable solutions; the delta loop finds one."""
        sim = Simulator(max_delta=8)
        top = Module("top")
        x = top.signal("x")
        y = top.signal("y")
        top.submodule(Inverter("i1", x, y))
        top.submodule(Inverter("i2", y, x))
        sim.add(top)
        sim.step()
        assert x.value != y.value

    def test_combinational_loop_detected(self):
        """x = ~x oscillates forever and must be flagged."""
        sim = Simulator(max_delta=8)
        top = Module("top")
        x = top.signal("x")
        top.submodule(Inverter("i", x, x))
        sim.add(top)
        with pytest.raises(CombinationalLoopError):
            sim.step()


class TestSimulatorControl:
    def test_run_until_returns_elapsed_cycles(self):
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        elapsed = sim.run_until(lambda: counter.count.value == 10, max_cycles=100)
        assert elapsed == 10

    def test_run_until_raises_watchdog(self):
        sim = Simulator()
        counter = Counter(width=2)
        sim.add(counter)
        with pytest.raises(WatchdogTimeout):
            sim.run_until(lambda: counter.count.value == 9, max_cycles=50)

    def test_add_after_elaborate_rejected(self):
        sim = Simulator()
        sim.add(Counter("c1"))
        sim.elaborate()
        with pytest.raises(SimulationError):
            sim.add(Counter("c2"))

    def test_reset_restores_power_on_state(self):
        sim = Simulator()
        counter = Counter()
        sim.add(counter)
        sim.run(7)
        sim.reset()
        assert sim.cycle == 0
        assert counter.count.value == 0
        sim.run(3)
        assert counter.count.value == 3

    def test_cycle_hook_called_each_cycle(self):
        sim = Simulator()
        sim.add(Counter())
        seen = []
        sim.add_cycle_hook(seen.append)
        sim.run(4)
        assert seen == [1, 2, 3, 4]

    def test_submodule_flattening(self):
        sim = Simulator()
        top = Module("top")
        inner = top.submodule(Counter("inner"))
        sim.add(top)
        sim.run(2)
        assert inner.count.value == 2
