"""Differential harness: event and compiled schedulers vs. the fixpoint
reference.

The event-driven and compiled kernels are pure scheduling optimisations —
they decide *when* ``comb()``/``seq()`` processes run, never *what* they
compute. These tests prove that by running whole applications under all
three schedulers and comparing everything observable:

* the per-cycle hash of every signal value in the design (so a divergence
  is caught in the exact cycle it appears, not just at the end),
* the serialized trace bytes (the paper's artefact — must be bit-identical),
* the final cycle count and the application's own output/result dict.

Any future sensitivity-list omission (a module reading a signal it did not
declare) shows up here as a first-divergent-cycle assertion.
"""

import pytest

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config
from repro.platform import F1Deployment

# Three applications spanning the behaviours that stress the scheduler
# differently: dram_dma (polling host: long quiescent stretches), sha256
# (streaming compute), bnn (bursty weight/input traffic).
APPS = ("dram_dma", "sha256", "bnn")
SEEDS = (11, 207)
SCALE = 0.5


def _run_with_history(app_key: str, scheduler: str, seed: int) -> dict:
    """One full R2 recording run with a per-cycle signal-state history."""
    spec = get_app(app_key)
    acc_factory, host_factory = spec.make()
    deployment = F1Deployment(f"eq_{app_key}_{scheduler}", acc_factory,
                              bench_config(VidiConfig.r2), seed=seed,
                              scheduler=scheduler)
    assert deployment.sim.scheduler == scheduler
    signals = []
    history = []

    def snapshot(_cycle: int) -> None:
        if not signals:
            signals.extend(deployment.sim.signals())
        history.append(hash(tuple(sig._value for sig in signals)))

    deployment.sim.add_cycle_hook(snapshot)
    result: dict = {}
    if spec.stream_workload is not None:
        deployment.stream_driver.load_packets(
            spec.stream_workload(seed, SCALE))
    deployment.cpu.add_thread(host_factory(result, seed=seed, scale=SCALE))
    cycles = deployment.run_to_completion()
    spec.check(result)
    trace = deployment.recorded_trace({"app": app_key, "seed": seed})
    return {
        "cycles": cycles,
        "history": history,
        "trace_bytes": trace.to_bytes(),
        "result": result,
        "comb_evals": deployment.sim.comb_evals,
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("app_key", APPS)
def test_schedulers_bit_identical(app_key, seed):
    """Three-way differential: fixpoint is the reference semantics; both
    optimised kernels must reproduce it bit for bit."""
    fixpoint = _run_with_history(app_key, "fixpoint", seed)
    for scheduler in ("event", "compiled"):
        run = _run_with_history(app_key, scheduler, seed)
        assert run["cycles"] == fixpoint["cycles"], (
            f"{app_key} seed={seed}: {scheduler} cycle count differs")
        if run["history"] != fixpoint["history"]:
            first = next(i for i, (a, b) in enumerate(
                zip(run["history"], fixpoint["history"])) if a != b)
            pytest.fail(f"{app_key} seed={seed}: {scheduler} signal state "
                        f"diverged at cycle {first + 1}")
        assert run["trace_bytes"] == fixpoint["trace_bytes"], (
            f"{app_key} seed={seed}: {scheduler} trace bytes differ")
        assert run["result"] == fixpoint["result"], (
            f"{app_key} seed={seed}: {scheduler} app result differs")


def test_event_scheduler_actually_skips_work():
    """The equivalence above must not be vacuous: the event kernel has to
    evaluate far fewer comb processes than the blanket fixpoint loop."""
    event = _run_with_history("sha256", "event", SEEDS[0])
    fixpoint = _run_with_history("sha256", "fixpoint", SEEDS[0])
    assert event["comb_evals"] < fixpoint["comb_evals"] / 10


def test_compiled_scheduler_actually_skips_work():
    """Same non-vacuousness check for the compiled kernel: levelized
    sweeps plus quiescence must cut comb evaluations by an order of
    magnitude versus the blanket fixpoint loop."""
    compiled = _run_with_history("sha256", "compiled", SEEDS[0])
    fixpoint = _run_with_history("sha256", "fixpoint", SEEDS[0])
    assert compiled["comb_evals"] < fixpoint["comb_evals"] / 10
