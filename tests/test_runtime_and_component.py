"""Tests for the §4.2 runtime library and §4.1 component-level boundaries."""

import pytest

from repro.apps.sha256 import make
from repro.core import VidiConfig
from repro.core.runtime import VidiRuntime
from repro.errors import ConfigError
from repro.platform import F1Deployment, MmioWrite, WaitCycles


class TestVidiRuntime:
    def test_requires_record_configuration(self):
        accelerator_factory, _ = make()
        deployment = F1Deployment("r1", accelerator_factory,
                                  VidiConfig.r1(), seed=0)
        with pytest.raises(ConfigError):
            VidiRuntime(deployment)

    def test_disabled_window_records_nothing(self):
        accelerator_factory, _ = make()
        deployment = F1Deployment("rt", accelerator_factory,
                                  VidiConfig.r2(), seed=0)
        runtime = VidiRuntime(deployment)
        runtime.disable_recording()

        def program():
            yield MmioWrite("ocl", 0x20, 0xAAAA)
            yield WaitCycles(5)

        deployment.cpu.add_thread(program())
        deployment.run_to_completion()
        assert runtime.trace().size_bytes == 0

    def test_window_gating_excludes_setup_traffic(self):
        accelerator_factory, _ = make()
        deployment = F1Deployment("rt2", accelerator_factory,
                                  VidiConfig.r2(), seed=0)
        runtime = VidiRuntime(deployment)
        runtime.disable_recording()

        def setup():
            yield MmioWrite("ocl", 0x20, 1)   # not recorded

        deployment.cpu.add_thread(setup())
        deployment.run_to_completion()
        assert runtime.trace().size_bytes == 0

        # Fresh deployment: record only the "invocation" window.
        deployment2 = F1Deployment("rt3", accelerator_factory,
                                   VidiConfig.r2(), seed=0)
        runtime2 = VidiRuntime(deployment2)

        def setup_then_work():
            yield MmioWrite("ocl", 0x20, 1)
            yield WaitCycles(150)
            yield MmioWrite("ocl", 0x24, 2)

        runtime2.disable_recording()
        deployment2.cpu.add_thread(setup_then_work())
        # Run the setup write un-recorded, then open the window for the rest.
        deployment2.sim.run(60)
        with runtime2.recording():
            deployment2.run_to_completion()
        trace = runtime2.trace()
        ocl_w = trace.table.by_name("ocl.w").index
        starts = sum(1 for p in trace.packets() if (p.starts >> ocl_w) & 1)
        assert starts == 1   # only the in-window register write

    def test_save_roundtrip(self, tmp_path):
        accelerator_factory, host_factory = make()
        deployment = F1Deployment("rt4", accelerator_factory,
                                  VidiConfig.r2(), seed=0)
        runtime = VidiRuntime(deployment)
        result = {}
        deployment.cpu.add_thread(host_factory(result, seed=1, scale=0.3))
        deployment.run_to_completion()
        path = tmp_path / "runtime.trace"
        trace = runtime.save(path, metadata={"via": "runtime"})
        from repro.core import TraceFile

        again = TraceFile.load(path)
        assert again.body == trace.body
        assert again.metadata["via"] == "runtime"

    def test_recording_enabled_property(self):
        accelerator_factory, _ = make()
        deployment = F1Deployment("rt5", accelerator_factory,
                                  VidiConfig.r2(), seed=0)
        runtime = VidiRuntime(deployment)
        assert runtime.recording_enabled
        runtime.disable_recording()
        assert not runtime.recording_enabled
        with runtime.recording():
            assert runtime.recording_enabled
        assert not runtime.recording_enabled


class TestComponentReplay:
    def test_internal_channel_record_replay(self):
        """§4.1: a component boundary takes a handful of wiring lines."""
        import importlib.util
        import pathlib
        import sys

        example = (pathlib.Path(__file__).resolve().parent.parent
                   / "examples" / "component_replay.py")
        spec = importlib.util.spec_from_file_location("component_replay",
                                                      example)
        module = importlib.util.module_from_spec(spec)
        sys.modules["component_replay"] = module
        spec.loader.exec_module(module)
        state, trace = module.record_pipeline(seed=3, count=120)
        assert trace.size_bytes > 0
        assert module.replay_classifier_alone(trace) == state

    def test_component_trace_is_portable(self, tmp_path):
        import importlib
        module = importlib.import_module("component_replay")
        _, trace = module.record_pipeline(seed=4, count=40)
        path = tmp_path / "component.trace"
        trace.save(path)
        from repro.core import TraceFile

        loaded = TraceFile.load(path)
        assert module.replay_classifier_alone(loaded) == \
            module.record_pipeline(seed=4, count=40)[0]
