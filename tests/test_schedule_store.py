"""Disk tier of the compiled-schedule cache: correctness and corruption.

The contract under test is the one the module docstring promises: a disk
hit re-binds the stored step source without re-levelizing and produces a
kernel bit-identical to a cold compile, while *any* damaged or stale
entry — truncated, garbage, CRC-flipped, version-skewed — silently falls
back to the cold path. The cache may make a compile slower; it must
never make a kernel wrong.
"""

import pytest

from repro.sim import schedule_store
from repro.sim import compile as compile_mod
from repro.sim.compile import (
    clear_schedule_cache,
    schedule_cache_stats,
    schedule_key,
)
from repro.sim.module import Module
from repro.sim.simulator import Simulator

from tests.test_scheduler_equivalence import SEEDS, _run_with_history


@pytest.fixture
def store_dir(tmp_path):
    """A fresh, empty disk tier; both cache tiers cleaned around the test."""
    prev = schedule_store.cache_dir()
    clear_schedule_cache()
    schedule_store.clear()
    directory = tmp_path / "sched"
    schedule_store.configure(directory)
    yield directory
    clear_schedule_cache()
    schedule_store.clear()
    schedule_store.configure(str(prev) if prev is not None else None)


class Stage(Module):
    """src -> +1 chain element (a deterministic, cacheable topology)."""

    comb_static = True

    def __init__(self, name, src=None):
        super().__init__(name)
        self.src = src
        self.out = self.signal("out", width=32)
        if src is not None:
            self.sensitive_to(src)
        else:
            self.sensitive_to()
        self.drives(self.out)

    def comb(self):
        base = self.src.value if self.src is not None else 7
        self.out.drive(base + 1)


def _chain_sim(depth=3, name="chain"):
    sim = Simulator(name, scheduler="compiled")
    prev = None
    for i in range(depth):
        stage = Stage(f"s{i}", prev.out if prev is not None else None)
        sim.add(stage)
        prev = stage
    sim.elaborate()
    return sim, prev


def _entry_files(directory):
    return sorted(directory.glob("*" + schedule_store._SUFFIX))


# ----------------------------------------------------------------------
# cold write → disk hit
# ----------------------------------------------------------------------


def test_cold_compile_persists_entry(store_dir):
    sim, tail = _chain_sim()
    sim.run(3)
    assert tail.out.value == 10
    assert sim.schedule_cache_tier == "cold"
    stats = schedule_cache_stats()
    assert stats["disk_writes"] == 1
    assert len(_entry_files(store_dir)) == 1


def test_disk_hit_skips_levelization(store_dir, monkeypatch):
    sim1, tail1 = _chain_sim()
    sim1.run(3)
    clear_schedule_cache()   # kill the in-process tier; disk files survive

    # A disk hit must re-bind the stored source without re-levelizing:
    # make any levelization attempt explode.
    def boom(*_a, **_k):
        raise AssertionError("disk hit re-ran levelization")

    monkeypatch.setattr(compile_mod, "levelize", boom)
    sim2, tail2 = _chain_sim()
    sim2.run(3)
    assert sim2.schedule_cache_hit
    assert sim2.schedule_cache_tier == "disk"
    assert tail2.out.value == tail1.out.value
    stats = schedule_cache_stats()
    assert stats["disk_hits"] == 1
    assert stats["disk_misses"] == 0


def test_disk_hit_promotes_to_memory_tier(store_dir):
    sim1, _ = _chain_sim()
    sim1.run(1)
    clear_schedule_cache()
    sim2, _ = _chain_sim()
    sim2.run(1)
    assert sim2.schedule_cache_tier == "disk"
    sim3, _ = _chain_sim()
    sim3.run(1)
    assert sim3.schedule_cache_tier == "memory"
    assert schedule_cache_stats()["disk_hits"] == 1


def test_preload_serves_hits_without_file_io(store_dir):
    sim1, _ = _chain_sim()
    sim1.run(1)
    clear_schedule_cache()
    assert schedule_store.preload() == 1
    for path in _entry_files(store_dir):
        path.unlink()   # RAM mirror must now be the only copy
    sim2, _ = _chain_sim()
    sim2.run(1)
    assert sim2.schedule_cache_tier == "disk"


def test_disabled_tier_stays_cold(store_dir):
    schedule_store.configure(None)
    sim, _ = _chain_sim()
    sim.run(1)
    assert sim.schedule_cache_tier == "cold"
    assert schedule_cache_stats()["disk_writes"] == 0


# ----------------------------------------------------------------------
# bit-identity: cold vs disk-hit kernels under the 3-way matrix
# ----------------------------------------------------------------------


@pytest.mark.parametrize("app_key", ("sha256", "dram_dma"))
def test_disk_hit_kernel_bit_identical_across_schedulers(store_dir, app_key):
    """The equivalence matrix, with the compiled kernel bound from disk.

    Fixpoint is the reference semantics; event and a *cold* compiled run
    establish the baseline, then the in-process cache is wiped so the
    second compiled run must bind from the disk entry the first one
    wrote. All four runs must agree on every per-cycle signal hash, the
    serialized trace bytes, and the app result.
    """
    seed = SEEDS[0]
    fixpoint = _run_with_history(app_key, "fixpoint", seed)
    event = _run_with_history(app_key, "event", seed)
    cold = _run_with_history(app_key, "compiled", seed)
    assert schedule_cache_stats()["disk_writes"] >= 1

    clear_schedule_cache()
    warm = _run_with_history(app_key, "compiled", seed)
    assert schedule_cache_stats()["disk_hits"] >= 1, (
        "second compiled run did not bind from the disk tier")

    for name, run in (("event", event), ("compiled-cold", cold),
                      ("compiled-disk", warm)):
        assert run["cycles"] == fixpoint["cycles"], name
        assert run["history"] == fixpoint["history"], name
        assert run["trace_bytes"] == fixpoint["trace_bytes"], name
        assert run["result"] == fixpoint["result"], name


# ----------------------------------------------------------------------
# corruption: every damage mode must fall back to a cold compile
# ----------------------------------------------------------------------


def _damage_and_recompile(store_dir, damage):
    """Cold-compile, apply ``damage`` to the entry file, recompile."""
    sim1, tail1 = _chain_sim()
    sim1.run(3)
    (path,) = _entry_files(store_dir)
    damage(path)
    clear_schedule_cache()
    sim2, tail2 = _chain_sim()
    sim2.run(3)
    assert tail2.out.value == tail1.out.value
    return sim2


def test_truncated_entry_falls_back_cold(store_dir):
    sim = _damage_and_recompile(
        store_dir, lambda p: p.write_bytes(p.read_bytes()[:10]))
    assert sim.schedule_cache_tier == "cold"
    stats = schedule_cache_stats()
    assert stats["disk_invalidations"] == 1
    # The damaged file was unlinked and the cold compile re-wrote it
    # (clear_schedule_cache zeroed the counters between the two runs, so
    # this write is the fallback compile's, not the original's).
    assert stats["disk_writes"] == 1
    assert len(_entry_files(store_dir)) == 1


def test_garbage_entry_falls_back_cold(store_dir):
    sim = _damage_and_recompile(
        store_dir, lambda p: p.write_bytes(b"\xde\xad" * 512))
    assert sim.schedule_cache_tier == "cold"
    assert schedule_cache_stats()["disk_invalidations"] == 1


def test_crc_flip_falls_back_cold(store_dir):
    def flip(path):
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF   # payload byte: CRC32 check must catch it
        path.write_bytes(bytes(blob))

    sim = _damage_and_recompile(store_dir, flip)
    assert sim.schedule_cache_tier == "cold"
    assert schedule_cache_stats()["disk_invalidations"] == 1


def test_stale_format_version_falls_back_cold(store_dir):
    def stale(path):
        payload = schedule_store._decode(path.read_bytes())
        payload["format"] = schedule_store.FORMAT_VERSION + 1
        path.write_bytes(schedule_store._encode(payload))

    sim = _damage_and_recompile(store_dir, stale)
    assert sim.schedule_cache_tier == "cold"
    assert schedule_cache_stats()["disk_invalidations"] == 1


def test_tampered_source_hash_falls_back_cold(store_dir):
    def tamper(path):
        payload = schedule_store._decode(path.read_bytes())
        payload["source"] += "\n# tampered\n"
        path.write_bytes(schedule_store._encode(payload))

    sim = _damage_and_recompile(store_dir, tamper)
    assert sim.schedule_cache_tier == "cold"
    assert schedule_cache_stats()["disk_invalidations"] == 1


# ----------------------------------------------------------------------
# key derivation: the stale-cache hazards that must change the key
# ----------------------------------------------------------------------


def test_store_key_depends_on_package_version(monkeypatch):
    sim, _ = _chain_sim()
    key = schedule_key(sim)
    before = schedule_store.store_key(key)
    import repro

    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert schedule_store.store_key(key) != before


def test_store_key_depends_on_codegen_source(monkeypatch):
    sim, _ = _chain_sim()
    key = schedule_key(sim)
    before = schedule_store.store_key(key)
    monkeypatch.setattr(schedule_store, "_CODEGEN_SHA", "f" * 64)
    assert schedule_store.store_key(key) != before


def test_version_skewed_entry_never_loads(store_dir, monkeypatch):
    """Even a bit-perfect entry from another package version is invisible:
    the version is part of the key, so the lookup misses entirely."""
    sim1, _ = _chain_sim()
    sim1.run(1)
    clear_schedule_cache()
    import repro

    monkeypatch.setattr(repro, "__version__", "999.0.0")
    sim2, _ = _chain_sim()
    sim2.run(1)
    assert sim2.schedule_cache_tier == "cold"
    assert schedule_cache_stats()["disk_misses"] == 1
