"""Tests for waveform capture, metrics helpers, and table rendering."""

import pytest

from repro.analysis.metrics import (
    cycles_to_seconds,
    fmt_bytes,
    fmt_factor,
    mean,
    overhead_pct,
    reduction_factor,
    stddev,
)
from repro.analysis.tables import render_bars, render_table
from repro.channels import Channel, ChannelSink, ChannelSource, Field, PayloadSpec
from repro.sim import Module, Simulator, WaveformRecorder, render_ascii

WORD = PayloadSpec([Field("data", 8)])


class TestWaveform:
    def build(self):
        sim = Simulator()
        channel = Channel("ch", WORD)
        source = ChannelSource("src", channel)
        sink = ChannelSink("sink", channel)
        for m in (channel, source, sink):
            sim.add(m)
        recorder = WaveformRecorder(sim, [channel.valid, channel.ready,
                                          channel.payload])
        return sim, channel, source, sink, recorder

    def test_history_sampled_every_cycle(self):
        sim, channel, source, sink, recorder = self.build()
        sim.run(7)
        assert len(recorder.values(channel.valid)) == 7

    def test_handshake_visible_in_history(self):
        sim, channel, source, sink, recorder = self.build()
        source.send({"data": 0x5A})
        sim.run(10)
        valid = recorder.values(channel.valid)
        ready = recorder.values(channel.ready)
        fired = [v and r for v, r in zip(valid, ready)]
        assert sum(fired) == 1

    def test_render_ascii_shapes(self):
        sim, channel, source, sink, recorder = self.build()
        source.send({"data": 0x3C})
        sim.run(8)
        art = render_ascii(recorder)
        lines = art.splitlines()
        assert len(lines) == 4   # header + three signals
        assert "ch.valid" in art and "ch.payload" in art
        # one-bit rails use only rail characters
        valid_line = next(l for l in lines if "valid" in l)
        body = valid_line.split(maxsplit=1)[1]
        assert set(body) <= {"_", "‾"}

    def test_render_window(self):
        sim, channel, source, sink, recorder = self.build()
        sim.run(20)
        art = render_ascii(recorder, start=5, end=10)
        valid_line = next(l for l in art.splitlines() if "valid" in l)
        assert len(valid_line.split(maxsplit=1)[1]) == 5


class TestMetrics:
    def test_mean_and_stddev(self):
        assert mean([2, 4, 6]) == 4
        assert stddev([2, 4, 6]) == pytest.approx(2.0)
        assert stddev([5]) == 0.0

    def test_overhead(self):
        assert overhead_pct(100, 106) == pytest.approx(6.0)
        assert overhead_pct(100, 95) == pytest.approx(-5.0)

    def test_reduction(self):
        assert reduction_factor(1000, 10) == 100
        assert reduction_factor(1000, 0) == float("inf")

    def test_cycles_to_seconds_at_250mhz(self):
        assert cycles_to_seconds(250_000_000) == pytest.approx(1.0)

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.00 KB"
        assert fmt_bytes(3 * 1024 ** 3) == "3.00 GB"

    def test_fmt_factor(self):
        assert fmt_factor(97.4) == "97x"
        assert fmt_factor(10_149_896) == "10,149,896x"
        assert fmt_factor(float("inf")) == "inf"


class TestTables:
    def test_render_table_alignment(self):
        text = render_table("T", ["A", "Blong"], [[1, 2], ["xx", "y"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[2] and "Blong" in lines[2]
        assert len({len(l) for l in lines[1:]}) <= 2   # consistent rules

    def test_render_bars_scaling(self):
        text = render_bars("B", ["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[2].count("#") == 10      # max value gets full width
        assert lines[1].count("#") == 5
