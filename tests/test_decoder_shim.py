"""Tests for the trace decoder, shim wiring rules, and config edge cases."""

import pytest

from repro.apps.sha256 import make
from repro.core import VidiConfig, VidiMode
from repro.core.decoder import TraceDecoder
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.packets import CyclePacket
from repro.core.shim import VidiShim, build_channel_table
from repro.core.trace_file import TraceFile
from repro.errors import ConfigError
from repro.platform import F1Deployment, make_f1_interfaces


def toy_table():
    return ChannelTable([
        ChannelInfo(index=0, name="a", direction="in", content_bytes=2,
                    payload_bits=16),
        ChannelInfo(index=1, name="b", direction="out", content_bytes=1,
                    payload_bits=8),
    ])


class TestTraceDecoder:
    def test_channel_feed_carries_ends_masks(self):
        table = toy_table()
        packets = [
            CyclePacket(starts=0b01, contents={0: b"\x11\x22"}),
            CyclePacket(ends=0b11, validation={1: b"\x07"}),
        ]
        decoder = TraceDecoder(table)
        feeds = decoder.all_feeds(
            TraceFile.from_packets(table, packets).body)
        assert len(feeds) == 2
        assert feeds[0][0].start and feeds[0][0].content == b"\x11\x22"
        assert feeds[0][1].end and feeds[0][1].ends_mask == 0b11
        assert feeds[1][0].ends_mask == 0
        assert feeds[1][1].end

    def test_every_feed_has_every_packet(self):
        table = toy_table()
        packets = [CyclePacket(ends=0b10, validation={1: b"\x01"})
                   for _ in range(5)]
        decoder = TraceDecoder(table)
        feeds = decoder.all_feeds(TraceFile.from_packets(table, packets).body)
        assert all(len(feed) == 5 for feed in feeds)


class TestBuildChannelTable:
    def test_full_f1_table(self):
        interfaces = make_f1_interfaces("x")
        table = build_channel_table(
            interfaces, ("sda", "ocl", "bar1", "pcim", "pcis"))
        assert table.n == 25
        assert table.by_name("pcis.w").payload_bits == 593
        assert table.by_name("pcim.w").direction == "out"
        assert table.by_name("pcis.w").direction == "in"

    def test_subset_and_ordering(self):
        interfaces = make_f1_interfaces("x")
        table = build_channel_table(interfaces, ("pcim",))
        assert [c.name for c in table.channels] == [
            "pcim.aw", "pcim.w", "pcim.b", "pcim.ar", "pcim.r"]


class TestShimWiring:
    def test_mismatched_interface_sets_rejected(self):
        env = make_f1_interfaces("e")
        app = make_f1_interfaces("a")
        del app["pcis"]
        with pytest.raises(ConfigError):
            VidiShim("v", env, app, VidiConfig.r1())

    def test_replay_requires_matching_table(self):
        env = make_f1_interfaces("e")
        app = make_f1_interfaces("a")
        other_table = toy_table()
        trace = TraceFile.from_packets(
            other_table, [CyclePacket(ends=0b10, validation={1: b"\x00"})])
        with pytest.raises(ConfigError):
            VidiShim("v", env, app, VidiConfig.r3(), replay_trace=trace)

    def test_record_mode_has_monitor_per_channel(self):
        env = make_f1_interfaces("e")
        app = make_f1_interfaces("a")
        shim = VidiShim("v", env, app, VidiConfig.r2())
        assert len(shim.monitors) == 25
        directions = [m.direction for m in shim.monitors]
        assert directions.count("in") == 14   # 3x3 lite + pcis aw/w/ar + pcim b/r
        assert directions.count("out") == 11

    def test_transparent_mode_has_no_pipeline(self):
        env = make_f1_interfaces("e")
        app = make_f1_interfaces("a")
        shim = VidiShim("v", env, app, VidiConfig.r1())
        assert shim.store is None and shim.encoder is None
        assert not shim.monitors

    def test_recorded_trace_requires_recording(self):
        env = make_f1_interfaces("e")
        app = make_f1_interfaces("a")
        shim = VidiShim("v", env, app, VidiConfig.r1())
        with pytest.raises(ConfigError):
            shim.recorded_trace()

    def test_replay_without_validation_has_no_store(self):
        accelerator_factory, host_factory = make()
        recording = F1Deployment("nv", accelerator_factory,
                                 VidiConfig.r2(record_output_contents=True),
                                 seed=0)
        result = {}
        recording.cpu.add_thread(host_factory(result, seed=1, scale=0.3))
        recording.run_to_completion()
        trace = recording.recorded_trace()
        replay = F1Deployment(
            "nv_r", accelerator_factory,
            VidiConfig.r3(record_output_contents=False), replay_trace=trace)
        assert replay.shim.store is None
        replay.run_replay()
        assert replay.shim.replay_done


class TestConfig:
    def test_monitored_canonical_order(self):
        config = VidiConfig.r2(interfaces=("pcis", "sda"))
        assert config.monitored == ("sda", "pcis")

    def test_duplicate_interface_rejected(self):
        with pytest.raises(ConfigError):
            VidiConfig.r2(interfaces=("sda", "sda"))

    def test_modes(self):
        assert VidiConfig.r1().mode is VidiMode.TRANSPARENT
        assert VidiConfig.r2().mode is VidiMode.RECORD
        assert VidiConfig.r3().mode is VidiMode.REPLAY
