"""Randomised end-to-end properties: arbitrary host workloads record+replay.

A scratchpad accelerator with data-dependent behaviour is driven by
hypothesis-generated host programs (random mixes of register writes, DMA
transfers and kernel launches). For every generated workload:

* recording is transparent (R1 and R2 agree on all outputs),
* the trace decodes, and
* replay satisfies transaction determinism (clean divergence report).

This is the reproduction's broadest correctness net — the randomized
analogue of running Vidi over arbitrary applications.
"""

import random as _random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import DOORBELL_ADDR, REG_ARG0, REG_CTRL, Accelerator
from repro.core import VidiConfig, compare_traces
from repro.platform import (
    DmaRead,
    DmaWrite,
    F1Deployment,
    MmioRead,
    MmioWrite,
    WaitCycles,
    WaitHostWord,
)

REG_OP = REG_ARG0          # 0 = checksum region, 1 = negate region
REG_ADDR = REG_ARG0 + 1
REG_LEN = REG_ARG0 + 2     # bytes


class Scratchpad(Accelerator):
    """Data-dependent kernel: checksums or transforms a DRAM region."""

    def kernel(self):
        op = self.regs[REG_OP]
        addr = self.regs[REG_ADDR]
        length = self.regs[REG_LEN]
        data = self.dram.read_bytes(addr, length)
        if op == 0:
            checksum = 0
            for byte in data:
                checksum = (checksum * 31 + byte) & 0xFFFF_FFFF
                if byte & 1:
                    yield 1     # data-dependent timing
            self.regs[REG_ARG0 + 3] = checksum
            yield max(1, length // 8)
        else:
            self.dram.write_bytes(addr, bytes((~b) & 0xFF for b in data))
            yield max(1, length // 4)
        payload = self.dram.read_bytes(addr, min(length, 64)).ljust(64, b"\0")
        yield ("write_host", 0x3_0000, payload)


def build_program(ops, result):
    """Turn a generated op list into a host program."""
    def program():
        launches = 0
        outputs = []
        for op in ops:
            kind = op[0]
            if kind == "dma_write":
                _, addr, payload = op
                yield DmaWrite(addr, payload)
            elif kind == "dma_read":
                _, addr, length = op
                outputs.append((yield DmaRead(addr, length)))
            elif kind == "reg_read":
                outputs.append((yield MmioRead("ocl", (REG_ARG0 + 3) * 4)))
            elif kind == "wait":
                yield WaitCycles(op[1])
            else:  # launch
                _, op_code, addr, length = op
                yield MmioWrite("ocl", REG_OP * 4, op_code)
                yield MmioWrite("ocl", REG_ADDR * 4, addr)
                yield MmioWrite("ocl", REG_LEN * 4, length)
                yield MmioWrite("ocl", REG_CTRL * 4, 1)
                launches += 1
                expect = launches
                yield WaitHostWord(DOORBELL_ADDR, lambda w, e=expect: w >= e)
        result["outputs"] = outputs
    return program()


@st.composite
def workloads(draw):
    rng = _random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    ops = []
    n_ops = draw(st.integers(min_value=2, max_value=7))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["dma_write", "dma_read", "launch", "reg_read", "wait"]))
        if kind == "dma_write":
            addr = rng.randrange(0, 1024) * 4
            payload = bytes(rng.getrandbits(8)
                            for _ in range(rng.randrange(1, 200)))
            ops.append(("dma_write", addr, payload))
        elif kind == "dma_read":
            ops.append(("dma_read", rng.randrange(0, 1024) * 4,
                        rng.randrange(1, 150)))
        elif kind == "launch":
            ops.append(("launch", rng.randrange(2), rng.randrange(0, 16) * 64,
                        rng.randrange(8, 128)))
        elif kind == "reg_read":
            ops.append(("reg_read",))
        else:
            ops.append(("wait", rng.randrange(1, 40)))
    if not any(op[0] == "launch" for op in ops):
        ops.append(("launch", 0, 0, 32))
    return ops


def run(config, ops, seed):
    deployment = F1Deployment(
        "prop", lambda ifs: Scratchpad("scratch", ifs), config, seed=seed)
    result = {}
    deployment.cpu.add_thread(build_program(ops, result))
    deployment.run_to_completion(max_cycles=400_000)
    return deployment, result


class TestEndToEndProperties:
    @given(workloads(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=12, deadline=None)
    def test_recording_is_transparent(self, ops, seed):
        _, r1 = run(VidiConfig.r1(), ops, seed)
        _, r2 = run(VidiConfig.r2(), ops, seed)
        assert r1["outputs"] == r2["outputs"]

    @given(workloads(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=12, deadline=None)
    def test_replay_is_transaction_deterministic(self, ops, seed):
        deployment, _ = run(VidiConfig.r2(), ops, seed)
        trace = deployment.recorded_trace()
        replay = F1Deployment(
            "prop_r", lambda ifs: Scratchpad("scratch", ifs),
            VidiConfig.r3(), replay_trace=trace)
        replay.run_replay(max_cycles=400_000)
        report = compare_traces(trace, replay.recorded_trace())
        assert not report.of_kind("count"), report.summary()
        assert not report.of_kind("ordering"), report.summary()
        assert not report.of_kind("content"), report.summary()
