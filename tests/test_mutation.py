"""Tests for the trace mutation tool (§4.2, used by the §5.3 case study)."""

import pytest

from repro.core.events import ChannelInfo, ChannelTable
from repro.core.mutation import EventRef, TraceMutator
from repro.core.packets import CyclePacket
from repro.core.trace_file import TraceFile
from repro.errors import ConfigError, TraceFormatError


def make_trace():
    """Channels: 0=in 'aw', 1=in 'w', 2=out 'b'. AW ends before W ends."""
    table = ChannelTable([
        ChannelInfo(index=0, name="aw", direction="in", content_bytes=2,
                    payload_bits=16),
        ChannelInfo(index=1, name="w", direction="in", content_bytes=4,
                    payload_bits=32),
        ChannelInfo(index=2, name="b", direction="out", content_bytes=1,
                    payload_bits=8),
    ])
    packets = [
        CyclePacket(starts=0b011, contents={0: b"\x10\x00", 1: b"\x01\x02\x03\x04"}),
        CyclePacket(ends=0b001),                                   # aw end
        CyclePacket(ends=0b010),                                   # w end
        CyclePacket(ends=0b100, validation={2: b"\x00"}),          # b end
    ]
    return TraceFile.from_packets(table, packets, with_validation=True)


class TestLocate:
    def test_missing_event_rejected(self):
        mut = TraceMutator(make_trace())
        with pytest.raises(TraceFormatError):
            mut.move_end_before(EventRef("end", "aw", 5), EventRef("end", "w", 0))

    def test_unknown_channel_rejected(self):
        mut = TraceMutator(make_trace())
        with pytest.raises(ConfigError):
            mut.move_end_before(EventRef("end", "nope", 0), EventRef("end", "w", 0))

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            EventRef("middle", "aw", 0)


class TestMoveEndBefore:
    def test_reorders_w_end_before_aw_end(self):
        mut = TraceMutator(make_trace())
        mut.move_end_before(EventRef("end", "w", 0), EventRef("end", "aw", 0))
        mutated = mut.build()
        packets = mutated.packets()
        end_order = []
        for p in packets:
            for ch in range(3):
                if (p.ends >> ch) & 1:
                    end_order.append(ch)
        assert end_order == [1, 0, 2]  # w before aw, b still last
        assert mutated.metadata["mutated"] is True

    def test_noop_when_already_before(self):
        mut = TraceMutator(make_trace())
        before = [p.ends for p in mut.packets]
        mut.move_end_before(EventRef("end", "aw", 0), EventRef("end", "w", 0))
        assert [p.ends for p in mut.packets] == before

    def test_moving_start_rejected(self):
        mut = TraceMutator(make_trace())
        with pytest.raises(ConfigError):
            mut.move_end_before(EventRef("start", "aw", 0),
                                EventRef("end", "w", 0))

    def test_validation_ok_after_legal_move(self):
        mut = TraceMutator(make_trace())
        mut.move_end_before(EventRef("end", "w", 0), EventRef("end", "aw", 0))
        assert mut.validate() is None

    def test_validation_catches_end_before_start(self):
        mut = TraceMutator(make_trace())
        mut.move_end_before(EventRef("end", "w", 0), EventRef("end", "aw", 0))
        # Manually push the w end before even the starts packet.
        fresh = mut.packets.pop(1)
        mut.packets.insert(0, fresh)
        assert mut.validate() is not None


class TestOtherMutations:
    def test_drop_event(self):
        mut = TraceMutator(make_trace())
        mut.drop_event(EventRef("end", "b", 0))
        ends = 0
        for p in mut.packets:
            ends |= p.ends
        assert not (ends & 0b100)

    def test_drop_removes_empty_packet(self):
        mut = TraceMutator(make_trace())
        n = len(mut.packets)
        mut.drop_event(EventRef("end", "b", 0))
        assert len(mut.packets) == n - 1

    def test_rewrite_start_content(self):
        mut = TraceMutator(make_trace())
        mut.rewrite_start_content(EventRef("start", "w", 0), b"\xff\xee\xdd\xcc")
        assert mut.packets[0].contents[1] == b"\xff\xee\xdd\xcc"

    def test_rewrite_wrong_length_rejected(self):
        mut = TraceMutator(make_trace())
        with pytest.raises(ConfigError):
            mut.rewrite_start_content(EventRef("start", "w", 0), b"\x00")

    def test_rewrite_end_rejected(self):
        mut = TraceMutator(make_trace())
        with pytest.raises(ConfigError):
            mut.rewrite_start_content(EventRef("end", "w", 0), b"\0\0\0\0")

    def test_build_roundtrips_through_serialization(self):
        mut = TraceMutator(make_trace())
        mut.move_end_before(EventRef("end", "w", 0), EventRef("end", "aw", 0))
        rebuilt = TraceFile.from_bytes(mut.build().to_bytes())
        assert len(rebuilt.packets()) == len(mut.packets)
