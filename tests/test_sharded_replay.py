"""Tests for checkpoint-sharded parallel replay."""

import pytest

from repro.apps.registry import get_app
from repro.core import compare_traces
from repro.core.checkpoint import Checkpoint
from repro.errors import ConfigError
from repro.harness.runner import replay_run
from repro.harness.sharded_replay import (
    load_checkpoints,
    plan_shards,
    record_with_checkpoints,
    replay_sharded,
    save_checkpoints,
)


def _always_dies(cell):
    """Module-level so the process pool can pickle it."""
    raise RuntimeError("persistent fault")


@pytest.fixture(scope="module")
def recorded():
    """One DRAM-DMA recording with harvested checkpoints plus its
    sequential replay — the reference every sharded variant must match."""
    spec = get_app("dram_dma")
    metrics, checkpoints = record_with_checkpoints(spec, seed=5)
    trace = metrics.result["trace"]
    sequential = replay_run(spec, trace)
    return spec, trace, checkpoints, sequential


class TestRecordWithCheckpoints:
    def test_harvests_quiescent_checkpoints(self, recorded):
        _spec, trace, checkpoints, _seq = recorded
        assert checkpoints
        n = trace.packet_count
        for ordinal, checkpoint in checkpoints.items():
            assert 0 < ordinal <= n
            assert checkpoint.cycle > 0
            assert checkpoint.dram_words

    def test_metrics_match_plain_record(self, recorded):
        """The harvesting hook must not perturb the recorded execution."""
        from repro.harness.runner import bench_config, record_run
        from repro.core import VidiConfig

        spec, trace, _checkpoints, _seq = recorded
        plain = record_run(spec, bench_config(VidiConfig.r2), seed=5)
        assert bytes(plain.result["trace"].body) == bytes(trace.body)


class TestPlanShards:
    CPS = {10: Checkpoint(cycle=1), 20: Checkpoint(cycle=2),
           30: Checkpoint(cycle=3)}

    def test_single_segment_needs_no_checkpoint(self):
        assert plan_shards(40, self.CPS, 1) == [(0, 40, None)]

    def test_even_split_picks_nearest_boundary(self):
        plan = plan_shards(40, self.CPS, 2)
        assert [(a, b) for a, b, _cp in plan] == [(0, 20), (20, 40)]
        assert plan[1][2] is self.CPS[20]

    def test_more_segments_than_candidates(self):
        plan = plan_shards(40, self.CPS, 10)
        bounds = [a for a, _b, _cp in plan]
        assert bounds == [0, 10, 20, 30]

    def test_bounds_cover_trace_and_increase(self):
        plan = plan_shards(40, self.CPS, 3)
        assert plan[0][0] == 0 and plan[-1][1] == 40
        for (_a, b, _cp), (a2, _b2, _cp2) in zip(plan, plan[1:]):
            assert b == a2

    def test_no_checkpoints_degenerates_to_sequential(self):
        assert plan_shards(40, {}, 4) == [(0, 40, None)]

    def test_zero_segments_rejected(self):
        with pytest.raises(ConfigError):
            plan_shards(40, self.CPS, 0)


class TestShardedReplay:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_stitched_identical_to_sequential(self, recorded, jobs):
        spec, trace, checkpoints, sequential = recorded
        result = replay_sharded(spec, trace, checkpoints,
                                segments=max(jobs, 2), jobs=jobs)
        assert result.segments >= 2
        reference = sequential.result["validation"]
        assert bytes(result.validation.body) == bytes(reference.body)

    def test_divergence_verdicts_identical(self, recorded):
        spec, trace, checkpoints, sequential = recorded
        result = replay_sharded(spec, trace, checkpoints, segments=3)
        sharded_report = compare_traces(trace, result.validation)
        reference_report = compare_traces(
            trace, sequential.result["validation"])
        assert [(d.kind, d.channel, d.occurrence, d.detail)
                for d in sharded_report.divergences] == \
            [(d.kind, d.channel, d.occurrence, d.detail)
             for d in reference_report.divergences]

    def test_segments_cut_replay_critical_path(self, recorded):
        spec, trace, checkpoints, sequential = recorded
        result = replay_sharded(spec, trace, checkpoints, segments=3)
        assert result.segments == 3
        assert result.critical_path_cycles < sequential.cycles

    def test_per_cycle_shards_also_identical(self, recorded):
        """Sharding composes with the warp switch in either position."""
        spec, trace, checkpoints, sequential = recorded
        result = replay_sharded(spec, trace, checkpoints, segments=2,
                                time_warp=False)
        assert bytes(result.validation.body) == \
            bytes(sequential.result["validation"].body)


class TestCrashRecovery:
    """Injected worker crashes must be absorbed by the retry/fallback
    machinery and leave the stitched validation trace bit-identical."""

    def test_single_crash_recovers_bit_identically(self, recorded):
        from repro.faults import FaultInjector, FaultPlan

        spec, trace, checkpoints, sequential = recorded
        injector = FaultInjector(
            FaultPlan.single("worker-crash", seed=1, crashes=1))
        result = replay_sharded(spec, trace, checkpoints, segments=3,
                                jobs=2, retries=2, injector=injector)
        assert any("worker-crash" in entry for entry in injector.log)
        assert bytes(result.validation.body) == \
            bytes(sequential.result["validation"].body)

    def test_every_shard_crashing_still_recovers(self, recorded):
        """Even with every worker dying once, retries (and ultimately the
        inline fallback) reconstruct the full validation trace."""
        from repro.faults import FaultInjector, FaultPlan

        spec, trace, checkpoints, sequential = recorded
        injector = FaultInjector(
            FaultPlan.single("worker-crash", seed=2, crashes=99))
        result = replay_sharded(spec, trace, checkpoints, segments=3,
                                jobs=2, retries=2, injector=injector)
        assert bytes(result.validation.body) == \
            bytes(sequential.result["validation"].body)

    def test_exhausted_retries_raise_typed_error(self, recorded):
        """A persistent (non-transient) crash surfaces as ShardReplayError
        rather than an opaque pool exception."""
        from repro.errors import ShardReplayError
        from repro.harness.runner import run_cells

        with pytest.raises(ShardReplayError):
            run_cells([1, 2], _always_dies, jobs=2, retries=1)


class TestCheckpointSidecar:
    def test_save_load_round_trip(self, recorded, tmp_path):
        _spec, _trace, checkpoints, _seq = recorded
        path = tmp_path / "trace.ckpt"
        save_checkpoints(path, checkpoints)
        assert load_checkpoints(path) == checkpoints
