"""Unit tests for the compiled scheduler's levelization and code generation.

The app-level differential harness (``tests/test_scheduler_equivalence.py``)
proves the compiled kernel bit-identical on whole deployments; these tests
pin down the pieces on purpose-built micro-designs: topological rank
ordering, SCC demotion to iterative settling, the undeclared-sensitivity
fallback, seq-idle guard inlining, guard-term validation, and counter
hygiene across ``reset()``.
"""

import pytest

from repro.errors import SimulationError
from repro.faults import run_campaign
from repro.sim.compile import levelize
from repro.sim.module import Module
from repro.sim.simulator import Simulator


class Const(Module):
    """Drives a constant onto its output; woken only explicitly."""

    comb_static = True

    def __init__(self, name, value=1):
        super().__init__(name)
        self.value = value
        self.out = self.signal("out", width=32)
        self.sensitive_to()
        self.drives(self.out)

    def comb(self):
        self.out.drive(self.value)

    def set(self, value):
        self.value = value
        self.wake()


class Inc(Module):
    """out = src + 1, combinationally."""

    comb_static = True

    def __init__(self, name, src):
        super().__init__(name)
        self.src = src
        self.out = self.signal("out", width=32)
        self.sensitive_to(src)
        self.drives(self.out)

    def comb(self):
        self.out.drive(self.src.value + 1)


class MaxOf(Module):
    """out = max(src, floor) — two of these cross-coupled form a settling
    combinational cycle (each pass can only raise the values, bounded by
    the largest floor, so the fixpoint exists)."""

    comb_static = True

    def __init__(self, name, floor=0):
        super().__init__(name)
        self.floor = floor
        self.src = None
        self.out = self.signal("out", width=32)
        self.drives(self.out)

    def couple(self, other):
        self.src = other.out
        self.sensitive_to(other.out)

    def comb(self):
        self.out.drive(max(self.src.value, self.floor))

    def set_floor(self, floor):
        self.floor = floor
        self.wake()


class SelfRamp(Module):
    """Counts up to ``target`` by re-triggering on its own output — a
    combinational self-loop that settles in ``target`` delta passes."""

    comb_static = True

    def __init__(self, name, target):
        super().__init__(name)
        self.target = target
        self.out = self.signal("out", width=32)
        self.sensitive_to(self.out)
        self.drives(self.out)

    def comb(self):
        if self.out.value < self.target:
            self.out.drive(self.out.value + 1)


class Undeclared(Module):
    """Real comb process with no sensitivity declaration at all — must get
    the conservative every-pass treatment under every scheduler."""

    def __init__(self, name, src):
        super().__init__(name)
        self.src = src
        self.out = self.signal("out", width=32)

    def comb(self):
        self.out.drive(self.src.value * 2)


class CountSeq(Module):
    """Pure seq module counting its calls, optionally guardable."""

    has_comb = False

    def __init__(self, name, guard=None):
        super().__init__(name)
        self.calls = 0
        self.idle = False
        if guard is not None:
            self.seq_idle_when(*guard)

    def seq(self):
        self.calls += 1


def _compiled_sim(*modules, name="t"):
    sim = Simulator(name, scheduler="compiled")
    for m in modules:
        sim.add(m)
    sim.elaborate()
    return sim


# ----------------------------------------------------------------------
# levelization
# ----------------------------------------------------------------------

class TestLevelize:
    def test_chain_ranks_follow_the_graph_not_elaboration_order(self):
        a = Const("a", value=10)
        b = Inc("b", a.out)
        c = Inc("c", b.out)
        # Added in reverse: ranks must come from drives→sensitivity edges.
        sim = _compiled_sim(c, b, a)
        sim.step()
        lev = sim._compiled.levelization
        assert [s.modules for s in lev.stages] == [(a,), (b,), (c,)]
        assert [s.level for s in lev.stages] == [0, 1, 2]
        assert not any(s.iterative for s in lev.stages)
        assert sim.rank_count == 3
        assert sim.demoted_sccs == 0
        assert c.out.value == 12

    def test_independent_modules_share_a_rank(self):
        a, b = Const("a"), Const("b")
        sim = _compiled_sim(a, b)
        sim.step()
        lev = sim._compiled.levelization
        assert len(lev.stages) == 1
        assert lev.stages[0].modules == (a, b)

    def test_cross_coupled_scc_is_demoted_to_iterative(self):
        a, b = MaxOf("a"), MaxOf("b")
        a.couple(b)
        b.couple(a)
        tail = Inc("tail", a.out)
        sim = _compiled_sim(a, b, tail)
        sim.step()
        lev = sim._compiled.levelization
        assert sim.demoted_sccs == 1
        scc = next(s for s in lev.stages if s.iterative)
        assert set(scc.modules) == {a, b}
        # The downstream reader ranks strictly after the cycle.
        tail_stage = next(s for s in lev.stages if tail in s.modules)
        assert tail_stage.level > scc.level
        # The cycle actually settles: raising one floor lifts both outputs.
        a.set_floor(5)
        sim.step()
        assert a.out.value == 5
        assert b.out.value == 5
        assert tail.out.value == 6

    def test_self_loop_is_demoted_to_iterative(self):
        ramp = SelfRamp("ramp", target=7)
        sim = _compiled_sim(ramp)
        sim.step()
        assert sim.demoted_sccs == 1
        assert sim._compiled.levelization.stages[0].iterative
        assert ramp.out.value == 7

    def test_undeclared_module_falls_back_to_every_pass(self):
        a = Const("a", value=3)
        u = Undeclared("u", a.out)
        sim = _compiled_sim(a, u)
        lev = levelize(sim._event_comb, sim._always_comb, sim._dynamic_comb)
        assert u in lev.always
        assert all(u not in s.modules for s in lev.stages)
        sim.run(3)
        assert u.out.value == 6
        # Always-fallback modules force settling every cycle: the quiescent
        # fast path must stay off, exactly as under the event kernel.
        assert sim.quiescent_cycles == 0
        # A value change still propagates through the fallback evaluation.
        a.set(8)
        sim.step()
        assert u.out.value == 16

    def test_rank_eval_counters_sum_to_comb_evals(self):
        a = Const("a")
        b = Inc("b", a.out)
        sim = _compiled_sim(a, b)
        sim.run(4)
        assert sim.comb_evals > 0
        assert sum(sim.rank_evals) == sim.comb_evals
        assert len(sim.rank_evals) == sim.rank_count


# ----------------------------------------------------------------------
# seq-idle guards
# ----------------------------------------------------------------------

class TestSeqIdleGuards:
    def test_truthy_guard_skips_seq_calls(self):
        gated = CountSeq("gated", guard=(("truthy", "idle"),))
        free = CountSeq("free")
        sim = _compiled_sim(gated, free)
        sim.run(10)
        assert gated.calls == 10
        assert free.calls == 10
        gated.idle = True
        sim.run(10)
        assert gated.calls == 10    # guard held: every call skipped
        assert free.calls == 20

    def test_bad_attribute_path_is_rejected_at_compile(self):
        bad = CountSeq("bad", guard=(("falsy", "no spaces allowed"),))
        sim = _compiled_sim(bad)
        with pytest.raises(SimulationError):
            sim.step()

    def test_unknown_term_kind_is_rejected_at_compile(self):
        bad = CountSeq("bad", guard=(("sometimes", "idle"),))
        sim = _compiled_sim(bad)
        with pytest.raises(SimulationError):
            sim.step()


# ----------------------------------------------------------------------
# counter hygiene + campaign smoke
# ----------------------------------------------------------------------

class TestResetAndCampaign:
    def test_reset_zeroes_kernel_counters_in_place(self):
        a = Const("a")
        b = Inc("b", a.out)
        sim = _compiled_sim(a, b)
        sim.run(5)
        assert sim.comb_evals > 0
        rank_evals = sim.rank_evals
        sim.reset()
        assert sim.comb_evals == 0
        assert sim.quiescent_cycles == 0
        assert sim.warped_cycles == 0
        assert sim.warp_jumps == 0
        # The generated code binds the rank_evals list object: reset must
        # zero it in place, not rebind it.
        assert sim.rank_evals is rank_evals
        assert all(n == 0 for n in sim.rank_evals)
        sim.run(5)
        assert sum(sim.rank_evals) == sim.comb_evals

    def test_event_scheduler_reset_zeroes_counters_too(self):
        a = Const("a")
        sim = Simulator("e", scheduler="event")
        sim.add(a)
        sim.run(5)
        assert sim.comb_evals > 0
        sim.reset()
        assert (sim.comb_evals, sim.quiescent_cycles,
                sim.warped_cycles, sim.warp_jumps) == (0, 0, 0, 0)

    def test_fault_campaign_smoke_on_compiled_kernel(self):
        report = run_campaign(app="sha256", n_faults=6, seed=4,
                              scheduler="compiled")
        assert len(report.trials) == 6
        assert not report.silent_accepts


class TestReplayDatapathInlining:
    """The replayer's seq() is spliced into the generated step function."""

    @staticmethod
    def _record_trace():
        from repro.apps.registry import get_app
        from repro.core import VidiConfig
        from repro.platform import F1Deployment

        spec = get_app("sha256")
        acc_factory, host_factory = spec.make()
        recording = F1Deployment("inl_rec", acc_factory, VidiConfig.r2(),
                                 seed=1, scheduler="compiled")
        recording.cpu.add_thread(host_factory({}, seed=1))
        recording.run_to_completion()
        return spec, recording.recorded_trace({"app": "sha256", "seed": 1})

    @staticmethod
    def _replay_deployment(spec, trace):
        from repro.core import VidiConfig
        from repro.harness.runner import trace_interfaces
        from repro.platform import F1Deployment

        acc_factory, _host = spec.make()
        return F1Deployment(
            "inl_rep", acc_factory,
            VidiConfig.r3(interfaces=trace_interfaces(trace)),
            replay_trace=trace, scheduler="compiled")

    def test_replay_step_function_contains_inlined_walk(self):
        spec, trace = self._record_trace()
        replaying = self._replay_deployment(spec, trace)
        replaying.sim._step_callable()
        # The generated source carries the replayer's action walk (its
        # temporaries are the `_r...` family), not a bound seq() call
        # per channel replayer.
        source = replaying.sim._compiled.source
        assert "_rpos" in source and "_rneeds" in source

    def test_profiling_suppresses_inlining_and_stays_exact(self):
        spec, trace = self._record_trace()
        reference = self._replay_deployment(spec, trace)
        cycles = reference.run_replay()

        profiled = self._replay_deployment(spec, trace)
        profiled.sim.enable_profiling()
        profiled.sim._step_callable()
        # The per-instance profiling wrapper must stay a call — inlining
        # would bypass its timers — and the schedule cache must not leak
        # an inlined kernel into the profiled simulator.
        source = profiled.sim._compiled.source
        assert "_rpos" not in source
        assert profiled.run_replay() == cycles
        profile = profiled.sim.profile_report()
        assert any("rep." in row["module"] and row["seq_s"] >= 0
                   for row in profile)
