"""Tests for extension applications flowing through the standard harness."""

import pytest

from repro.apps.registry import EXTRA_APPS, get_app
from repro.core import VidiConfig, compare_traces
from repro.errors import ConfigError
from repro.harness.runner import (
    bench_config,
    record_run,
    replay_run,
    trace_interfaces,
)


class TestExtraRegistry:
    def test_extras_registered(self):
        assert set(EXTRA_APPS) == {"dram_dma_axi", "packet_filter"}
        assert get_app("packet_filter").stream_workload is not None
        assert "ddr4" in get_app("dram_dma_axi").interfaces

    def test_extras_not_in_table1_set(self):
        from repro.apps.registry import APPS

        assert "packet_filter" not in APPS
        assert len(APPS) == 10

    def test_paper_row_absent_for_extras(self):
        assert get_app("packet_filter").paper is None


class TestRunnerWithExtras:
    @pytest.mark.parametrize("key", ["dram_dma_axi", "packet_filter"])
    def test_record_and_replay_via_runner(self, key):
        spec = get_app(key)
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=12,
                             scale=0.6)
        trace = metrics.result["trace"]
        # The runner widened the boundary to the spec's interfaces.
        assert set(trace_interfaces(trace)) == set(spec.interfaces)
        replay = replay_run(spec, trace)
        report = compare_traces(trace, replay.result["validation"])
        assert report.clean, report.summary()

    def test_trace_interfaces_from_table(self):
        spec = get_app("sha256")
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=1,
                             scale=0.3)
        assert trace_interfaces(metrics.result["trace"]) == (
            "sda", "ocl", "bar1", "pcim", "pcis")

    def test_unknown_key_lists_extras(self):
        with pytest.raises(ConfigError) as excinfo:
            get_app("missing")
        assert "packet_filter" in str(excinfo.value)
