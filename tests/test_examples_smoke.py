"""Every example script must run cleanly end to end (subprocess smoke)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = [
    "quickstart.py",
    "debugging_workflow.py",
    "testing_with_mutation.py",
    "trace_inspection.py",
    "component_replay.py",
    "production_workflow.py",
    "streaming_dataplane.py",
]

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they did"


def test_example_list_is_complete():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
