"""§5.4 sweep: record+replay every application; transaction determinism holds.

This is the test-suite version of the divergence benchmark: smaller
workloads, every application, asserting the §5.4 guarantees —
counts and orderings always reproduce; contents reproduce everywhere
except the polling DRAM DMA.
"""

import pytest

from repro.apps.registry import APPS, get_app
from repro.core import VidiConfig, compare_traces
from repro.harness.runner import bench_config, record_run, replay_run


@pytest.mark.parametrize("key", list(APPS))
def test_record_replay_transaction_determinism(key):
    spec = get_app(key)
    metrics = record_run(spec, bench_config(VidiConfig.r2), seed=77,
                         scale=0.4)
    trace = metrics.result["trace"]
    replay = replay_run(spec, trace)
    report = compare_traces(trace, replay.result["validation"])
    assert not report.of_kind("count"), report.summary()
    assert not report.of_kind("ordering"), report.summary()
    if key != "dram_dma":
        # Content divergence is possible only for the polling application.
        assert not report.of_kind("content"), report.summary()


@pytest.mark.parametrize("key", ["sha256", "sssp", "bnn"])
def test_replay_reconstructs_internal_dram(key):
    """Replay recreates the accelerator's internal DRAM output regions."""
    spec = get_app(key)
    metrics = record_run(spec, bench_config(VidiConfig.r2), seed=78,
                         scale=0.4)
    trace = metrics.result["trace"]
    replay = replay_run(spec, trace)
    recorded_output = metrics.result["expected"]
    deployment = replay.result["deployment"]
    out_base = 0xF_0000
    replayed = deployment.accelerator.dram.read_bytes(out_base,
                                                      len(recorded_output))
    assert replayed == recorded_output
