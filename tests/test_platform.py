"""Tests for the platform layer: CPU model, DMA engines, host memory, PCIe."""

import pytest

from repro.channels import ProtocolChecker
from repro.errors import SimulationError
from repro.platform import (
    AxiManager,
    AxiSubordinate,
    CpuModel,
    DmaRead,
    DmaWrite,
    EnvironmentMode,
    HostMemoryController,
    HostMemRead,
    MmioRead,
    MmioWrite,
    WaitCycles,
    WaitHostWord,
    make_f1_interfaces,
)
from repro.sim import Module, RegisterFile, Simulator, WordMemory


def build_host_rig(mode=EnvironmentMode.HARDWARE, seed=0):
    """CPU model wired to app-side subordinates through pass-throughs."""
    from repro.channels import PassThrough

    sim = Simulator()
    env = make_f1_interfaces("env")
    app = make_f1_interfaces("app")
    for iface in list(env.values()) + list(app.values()):
        sim.add(iface)
    from repro.channels.axi import CHANNEL_ORDER
    for name in env:
        for ch in CHANNEL_ORDER:
            e, a = env[name].channels[ch], app[name].channels[ch]
            up, down = (e, a) if e.direction == "in" else (a, e)
            sim.add(PassThrough(f"thru.{name}.{ch}", up, down))
    host_mem = WordMemory("host", 1 << 20)
    cpu = CpuModel("cpu", env, host_mem, mode=mode, seed=seed)
    sim.add(cpu)
    host_mc = HostMemoryController("hmc", env["pcim"], host_mem, seed=seed)
    sim.add(host_mc)
    regs = RegisterFile("regs", 16)
    from repro.platform.axi_subordinate import AxiLiteSubordinate

    lite = AxiLiteSubordinate("ocl", app["ocl"], reg_read=regs.read,
                              reg_write=regs.write)
    sim.add(lite)
    dram = WordMemory("dram", 1 << 20)
    pcis = AxiSubordinate("pcis", app["pcis"], dram)
    sim.add(pcis)
    manager = AxiManager("pcim", app["pcim"])
    sim.add(manager)
    return sim, cpu, regs, dram, host_mem, manager


class TestMmio:
    def test_write_then_read(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        result = {}

        def program():
            yield MmioWrite("ocl", 8, 0xCAFE)
            result["value"] = yield MmioRead("ocl", 8)

        cpu.add_thread(program())
        sim.run_until(lambda: cpu.done, max_cycles=500)
        assert regs.read(8) == 0xCAFE
        assert result["value"] == 0xCAFE

    def test_unknown_interface_rejected(self):
        sim, cpu, *_ = build_host_rig()

        def program():
            yield MmioWrite("hbm", 0, 1)

        cpu.add_thread(program())
        with pytest.raises(SimulationError):
            sim.run_until(lambda: cpu.done, max_cycles=100)


class TestPcisDma:
    def test_aligned_roundtrip(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        payload = bytes(range(256))
        result = {}

        def program():
            yield DmaWrite(0x100, payload)
            result["readback"] = yield DmaRead(0x100, len(payload))

        cpu.add_thread(program())
        sim.run_until(lambda: cpu.done, max_cycles=5000)
        assert result["readback"] == payload
        assert dram.read_bytes(0x100, len(payload)) == payload

    def test_unaligned_write_uses_strobes_on_hardware(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        dram.write_bytes(0, b"\xEE" * 128)

        def program():
            yield DmaWrite(10, b"\x01\x02\x03")

        cpu.add_thread(program())
        sim.run_until(lambda: cpu.done, max_cycles=2000)
        data = dram.read_bytes(0, 32)
        assert data[9] == 0xEE            # neighbour preserved
        assert data[10:13] == b"\x01\x02\x03"
        assert data[13] == 0xEE

    def test_unaligned_write_corrupts_in_vendor_sim(self):
        """The vendor-sim inaccuracy: force-aligned, full-strobe writes."""
        sim, cpu, regs, dram, host_mem, manager = build_host_rig(
            mode=EnvironmentMode.VENDOR_SIM)
        dram.write_bytes(0, b"\xEE" * 128)

        def program():
            yield DmaWrite(10, b"\x01\x02\x03")

        cpu.add_thread(program())
        sim.run_until(lambda: cpu.done, max_cycles=2000)
        data = dram.read_bytes(0, 64)
        assert data[0:3] == b"\x01\x02\x03"   # landed at the aligned base
        assert data[3] == 0x00                # and padded with zeros

    def test_unaligned_read(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        dram.write_bytes(0, bytes(range(200)))
        result = {}

        def program():
            result["data"] = yield DmaRead(37, 50)

        cpu.add_thread(program())
        sim.run_until(lambda: cpu.done, max_cycles=2000)
        assert result["data"] == bytes(range(37, 87))

    def test_protocol_legality_under_dma(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        env = cpu.dma.interface
        checkers = [ProtocolChecker(f"chk.{n}", ch, strict=True)
                    for n, ch in env.channels.items()]
        for c in checkers:
            sim.add(c)

        def program():
            yield DmaWrite(0, bytes(range(128)))
            yield DmaRead(0, 128)

        cpu.add_thread(program())
        sim.run_until(lambda: cpu.done, max_cycles=5000)
        assert all(not c.violations for c in checkers)


class TestPcimManager:
    def test_fpga_writes_host_memory(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        manager.dma_write_bytes(0x2000, b"\x42" * 100)
        sim.run_until(lambda: manager.idle, max_cycles=2000)
        assert host_mem.read_bytes(0x2000, 100) == b"\x42" * 100

    def test_fpga_reads_host_memory(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        host_mem.write_bytes(0x3000, bytes(range(64)) * 3)
        results = []
        manager.dma_read(0x3000, 3, on_complete=results.append)
        sim.run_until(lambda: manager.idle, max_cycles=2000)
        assert len(results) == 1 and len(results[0]) == 3
        assert results[0][0] == int.from_bytes(bytes(range(64)), "little")

    def test_multi_burst_write(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        payload = bytes((i * 7) & 0xFF for i in range(64 * 20))  # 20 beats
        manager.dma_write_bytes(0x4000, payload)
        sim.run_until(lambda: manager.idle, max_cycles=5000)
        assert host_mem.read_bytes(0x4000, len(payload)) == payload

    def test_unaligned_manager_write_rejected(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        with pytest.raises(SimulationError):
            manager.dma_write(0x2001, [(0, 1)])


class TestHostThreads:
    def test_wait_cycles(self):
        sim, cpu, *_ = build_host_rig()
        log = []

        def program():
            yield WaitCycles(37)
            log.append(sim.cycle)

        cpu.add_thread(program())
        sim.run_until(lambda: cpu.done, max_cycles=200)
        assert log and log[0] >= 37

    def test_wait_host_word_and_mem_read(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        result = {}

        def waiter():
            yield WaitHostWord(0x500 - 0x500 % 64 + 64,
                               lambda w: w == 0x99)
            result["data"] = yield HostMemRead(0x540, 8)

        def poker():
            yield WaitCycles(30)
            host_mem.write_bytes(0x540, (0x99).to_bytes(8, "little"))

        cpu.add_thread(waiter())
        cpu.add_thread(poker())
        sim.run_until(lambda: cpu.done, max_cycles=500)
        assert result["data"] == (0x99).to_bytes(8, "little")

    def test_two_threads_interleave_operations(self):
        sim, cpu, regs, dram, host_mem, manager = build_host_rig()
        order = []

        def t1():
            yield MmioWrite("ocl", 0, 1)
            order.append("t1")
            yield WaitCycles(10)
            yield MmioWrite("ocl", 4, 2)
            order.append("t1")

        def t2():
            yield MmioWrite("ocl", 8, 3)
            order.append("t2")

        cpu.add_thread(t1())
        cpu.add_thread(t2())
        sim.run_until(lambda: cpu.done, max_cycles=1000)
        assert sorted(order) == ["t1", "t1", "t2"]
        assert regs[0] == 1 and regs[1] == 2 and regs[2] == 3

    def test_seeded_timing_is_deterministic(self):
        def run(seed):
            sim, cpu, regs, *_ = build_host_rig(seed=seed)

            def program():
                yield DmaWrite(0, b"\x11" * 256)
                yield MmioWrite("ocl", 0, 1)

            cpu.add_thread(program())
            return sim.run_until(lambda: cpu.done, max_cycles=5000)

        assert run(5) == run(5)
        assert run(5) != run(6) or run(7) != run(6)  # jitter varies by seed
