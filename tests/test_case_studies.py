"""End-to-end tests for the §5.2 debugging and §5.3 testing case studies."""

import pytest

from repro.apps import atop_echo, frame_fifo_echo
from repro.core import EventRef, TraceMutator, VidiConfig, compare_traces
from repro.errors import SimulationError, WatchdogTimeout
from repro.platform import EnvironmentMode, F1Deployment


def run_echo(buggy=True, honour_strobes=False, start_delay=4, n_frames=32,
             unaligned_offset=0, env_mode=EnvironmentMode.HARDWARE,
             config=None, seed=0):
    acc_factory, host_threads = frame_fifo_echo.make(
        buggy=buggy, honour_strobes=honour_strobes, start_delay=start_delay,
        n_frames=n_frames, unaligned_offset=unaligned_offset)
    dep = F1Deployment("echo", acc_factory, config or VidiConfig.r1(),
                       env_mode=env_mode, seed=seed)
    result = {}
    for thread in host_threads(result, seed=seed):
        dep.cpu.add_thread(thread)
    dep.run_to_completion(max_cycles=600_000)
    return dep, result


class TestFrameFifoEchoDebugging:
    def test_prompt_start_echoes_correctly(self):
        """T2 first: the echo server works, even with the buggy FIFO."""
        _, result = run_echo(start_delay=4)
        assert result["ok"], f"{result['mismatch_bytes']} bytes lost"

    def test_delayed_start_loses_data(self):
        """§5.2 bug 2: a late control write overflows the FIFO silently."""
        dep, result = run_echo(start_delay=3000)
        assert not result["ok"]
        assert dep.accelerator.fifo.dropped_fragments > 0

    def test_vendor_sim_cannot_run_two_threads(self):
        """The F1 simulator 'segfaults' on multi-threaded hosts."""
        with pytest.raises(SimulationError):
            run_echo(env_mode=EnvironmentMode.VENDOR_SIM)

    def test_unaligned_dma_corrupts_on_hardware_only(self):
        """§5.2 bug 1: strobe mishandling appears on hardware..."""
        dep, result = run_echo(start_delay=4, n_frames=8, unaligned_offset=24)
        # The unaligned tail injected garbage fragments beyond the payload;
        # the FIFO output region therefore disagrees with a pure echo.
        assert dep.accelerator.fragments_out > 8 * 16

    def test_replayed_hardware_trace_reproduces_data_loss(self):
        """Record the buggy run on 'hardware', replay it: same loss."""
        dep, result = run_echo(start_delay=3000, config=VidiConfig.r2())
        assert not result["ok"]
        dropped_on_hw = dep.accelerator.fifo.dropped_fragments
        trace = dep.recorded_trace()

        acc_factory, _ = frame_fifo_echo.make(buggy=True, start_delay=3000)
        rdep = F1Deployment("echo_r", acc_factory, VidiConfig.r3(),
                            replay_trace=trace)
        rdep.run_replay(max_cycles=600_000)
        # LossCheck-style diagnosis on the replayed execution: the same
        # fragments were dropped, deterministically reproducible.
        assert rdep.accelerator.fifo.dropped_fragments == dropped_on_hw
        report = compare_traces(trace, rdep.recorded_trace())
        assert not report.of_kind("count")

    def test_replay_count_matches_record(self):
        dep, result = run_echo(start_delay=4, n_frames=16,
                               config=VidiConfig.r2())
        assert result["ok"]
        trace = dep.recorded_trace()
        acc_factory, _ = frame_fifo_echo.make(buggy=True, start_delay=4,
                                              n_frames=16)
        rdep = F1Deployment("echo_r", acc_factory, VidiConfig.r3(),
                            replay_trace=trace)
        rdep.run_replay(max_cycles=600_000)
        report = compare_traces(trace, rdep.recorded_trace())
        assert report.clean, report.summary()


def run_atop(buggy=True, config=None, seed=0, n_words=24):
    acc_factory, host_factory = atop_echo.make(buggy=buggy, n_words=n_words)
    dep = F1Deployment("atop", acc_factory, config or VidiConfig.r1(),
                       seed=seed)
    result = {}
    dep.cpu.add_thread(host_factory(result, seed=seed))
    dep.run_to_completion(max_cycles=600_000)
    return dep, result


def mutate_w_before_aw(trace):
    """Reorder the first pong W-burst's last-beat end before its AW end."""
    mut = TraceMutator(trace)
    mut.move_end_before(EventRef("end", "pcim.w", 0),
                        EventRef("end", "pcim.aw", 0))
    assert mut.validate() is None
    return mut.build()


class TestAtopFilterTesting:
    def test_buggy_filter_passes_ordinary_execution(self):
        """The bug never fires in normal runs — hardware or simulation."""
        dep, result = run_atop(buggy=True)
        atop_echo.check(result)
        assert not dep.accelerator.filter.wedged

    def test_recorded_trace_has_aw_end_before_w_end(self):
        """Real DMA controllers complete AW before the last W beat."""
        dep, result = run_atop(buggy=True, config=VidiConfig.r2())
        trace = dep.recorded_trace()
        aw = trace.table.by_name("pcim.aw").index
        w = trace.table.by_name("pcim.w").index
        first_aw_end = first_w_end = None
        for i, p in enumerate(trace.packets()):
            if first_aw_end is None and (p.ends >> aw) & 1:
                first_aw_end = i
            if first_w_end is None and (p.ends >> w) & 1:
                first_w_end = i
        assert first_aw_end is not None and first_w_end is not None
        assert first_aw_end <= first_w_end

    def test_mutated_replay_deadlocks_buggy_filter(self):
        """§5.3: replaying the reordered trace wedges the buggy filter."""
        dep, result = run_atop(buggy=True, config=VidiConfig.r2())
        mutated = mutate_w_before_aw(dep.recorded_trace())
        acc_factory, _ = atop_echo.make(buggy=True)
        rdep = F1Deployment("atop_r", acc_factory, VidiConfig.r3(),
                            replay_trace=mutated)
        with pytest.raises(WatchdogTimeout):
            rdep.run_replay(max_cycles=20_000)
        assert rdep.accelerator.filter.wedged

    def test_fixed_filter_survives_mutated_replay(self):
        """The upstream bugfix tolerates the W-before-AW completion order."""
        dep, result = run_atop(buggy=True, config=VidiConfig.r2())
        mutated = mutate_w_before_aw(dep.recorded_trace())
        acc_factory, _ = atop_echo.make(buggy=False)
        rdep = F1Deployment("atop_f", acc_factory, VidiConfig.r3(),
                            replay_trace=mutated)
        rdep.run_replay(max_cycles=200_000)
        assert not rdep.accelerator.filter.wedged
        assert rdep.accelerator.filter.dangling_w >= 0

    def test_unmutated_replay_is_clean(self):
        dep, result = run_atop(buggy=True, config=VidiConfig.r2())
        trace = dep.recorded_trace()
        acc_factory, _ = atop_echo.make(buggy=True)
        rdep = F1Deployment("atop_r2", acc_factory, VidiConfig.r3(),
                            replay_trace=trace)
        rdep.run_replay(max_cycles=200_000)
        report = compare_traces(trace, rdep.recorded_trace())
        assert report.clean, report.summary()
