"""Tests for checkpointing and partial record/replay (§7 synergy)."""

import pytest

from repro.apps.sha256 import MSG_BASE, OUT_BASE, REG_MSG_ADDR, make
from repro.apps import dram_dma
from repro.core import VidiConfig, compare_traces
from repro.core.checkpoint import (
    Checkpoint,
    restore_checkpoint,
    take_checkpoint,
)
from repro.errors import ConfigError
from repro.platform import F1Deployment


def run_first_task(seed=9):
    """Run task 1 of a two-task DRAM DMA host; checkpoint; return pieces."""
    acc_factory, _ = dram_dma.make(polling=False)

    def host_one_task(result, host_seed):
        return dram_dma.host_program(result, host_seed, n_words=16,
                                     polling=False, n_tasks=1)

    deployment = F1Deployment("ck", acc_factory, VidiConfig.r2(), seed=seed)
    result = {}
    deployment.cpu.add_thread(host_one_task(result, seed))
    deployment.run_to_completion()
    assert result["ok"]
    checkpoint = take_checkpoint(deployment)
    return acc_factory, checkpoint, result


class TestTakeCheckpoint:
    def test_quiescent_snapshot(self):
        _, checkpoint, _ = run_first_task()
        assert checkpoint.dram_words            # DRAM has the copied data
        assert checkpoint.doorbell_count == 1
        assert checkpoint.cycle > 0
        assert checkpoint.dram_bytes > 0

    def test_busy_kernel_rejected(self):
        accelerator_factory, host_factory = make()
        deployment = F1Deployment("busy", accelerator_factory,
                                  VidiConfig.r2(), seed=0)
        result = {}
        deployment.cpu.add_thread(host_factory(result, seed=1, scale=0.5))
        # Stop mid-run: the kernel is active.
        deployment.sim.run_until(
            lambda: deployment.accelerator._kernel is not None,
            max_cycles=100_000)
        with pytest.raises(ConfigError):
            take_checkpoint(deployment)

    def test_restore_requires_fresh_deployment(self):
        acc_factory, checkpoint, _ = run_first_task()
        deployment = F1Deployment("used", acc_factory, VidiConfig.r2(),
                                  seed=0)
        deployment.sim.run(5)
        with pytest.raises(ConfigError):
            restore_checkpoint(deployment, checkpoint)


class TestPartialRecordReplay:
    def test_suffix_recorded_from_checkpoint_replays_cleanly(self):
        """Record only the post-checkpoint suffix; replay it on a restored
        deployment; outputs match (the §7 partial-recording workflow)."""
        acc_factory, checkpoint, _ = run_first_task(seed=21)

        # Phase 2 (the suffix): a second task recorded from the checkpoint.
        suffix = F1Deployment("suffix", acc_factory, VidiConfig.r2(),
                              seed=22)
        restore_checkpoint(suffix, checkpoint)
        result = {}
        suffix.cpu.add_thread(dram_dma.host_program(
            result, 22, n_words=16, polling=False, n_tasks=1,
            doorbell_base=checkpoint.doorbell_count))
        suffix.run_to_completion()
        assert result["ok"]
        # The doorbell counter continued from the checkpoint.
        assert suffix.accelerator.doorbell_count == 2
        trace = suffix.recorded_trace({"phase": "suffix"})

        # Replay the suffix trace against the same checkpoint.
        replay = F1Deployment("suffix_r", acc_factory, VidiConfig.r3(),
                              replay_trace=trace)
        restore_checkpoint(replay, checkpoint, restore_host=False)
        replay.run_replay()
        report = compare_traces(trace, replay.recorded_trace())
        assert report.clean, report.summary()

    def test_replay_without_checkpoint_diverges(self):
        """The suffix trace needs its checkpoint: power-on state differs."""
        acc_factory, checkpoint, _ = run_first_task(seed=31)
        suffix = F1Deployment("suffix2", acc_factory, VidiConfig.r2(),
                              seed=32)
        restore_checkpoint(suffix, checkpoint)
        result = {}
        suffix.cpu.add_thread(dram_dma.host_program(
            result, 32, n_words=16, polling=False, n_tasks=1,
            doorbell_base=checkpoint.doorbell_count))
        suffix.run_to_completion()
        trace = suffix.recorded_trace()

        replay = F1Deployment("suffix2_r", acc_factory, VidiConfig.r3(),
                              replay_trace=trace)   # no restore!
        replay.run_replay()
        report = compare_traces(trace, replay.recorded_trace())
        # The doorbell payload carries the counter, which starts from 0
        # without the checkpoint -> content divergence on pcim.w.
        assert report.of_kind("content")


class TestCheckpointDataclass:
    def test_defaults(self):
        checkpoint = Checkpoint()
        assert checkpoint.dram_bytes == 0
        assert checkpoint.doorbell_count == 0
