"""Unit tests for the environment-side streaming endpoints."""

from repro.channels.axi_stream import axis_interface
from repro.channels.handshake import ChannelSink
from repro.platform.stream import StreamCollector, StreamDriver
from repro.sim import Simulator


def driver_rig(gap=0, gap_jitter=0, seed=0):
    sim = Simulator()
    interface = axis_interface("in", manager="cpu")
    sim.add(interface)
    driver = StreamDriver("drv", interface, gap=gap, gap_jitter=gap_jitter,
                          seed=seed)
    sim.add(driver)
    sink = ChannelSink("snk", interface.t)
    sim.add(sink)
    return sim, interface, driver, sink


class TestStreamDriver:
    def test_packets_delivered_in_order(self):
        sim, interface, driver, sink = driver_rig()
        driver.load_packets([b"abc", b"d" * 100])
        sim.run_until(lambda: driver.idle, max_cycles=500)
        sim.run(3)
        from repro.channels.axi_stream import unpack_packets

        beats = [interface.t.spec.unpack(w) for w in sink.received]
        assert unpack_packets(beats) == [b"abc", b"d" * 100]
        assert driver.packets_sent == 2

    def test_gaps_slow_delivery(self):
        fast_sim, _, fast_driver, _ = driver_rig(gap=0)
        slow_sim, _, slow_driver, _ = driver_rig(gap=10)
        packets = [b"x" * 10] * 5
        fast_driver.load_packets(list(packets))
        slow_driver.load_packets(list(packets))
        fast = fast_sim.run_until(lambda: fast_driver.idle, max_cycles=2000)
        slow = slow_sim.run_until(lambda: slow_driver.idle, max_cycles=2000)
        assert slow > fast

    def test_jitter_deterministic_per_seed(self):
        def run(seed):
            sim, _, driver, _ = driver_rig(gap=1, gap_jitter=5, seed=seed)
            driver.load_packets([b"p" * 20] * 6)
            return sim.run_until(lambda: driver.idle, max_cycles=2000)

        assert run(3) == run(3)

    def test_load_during_run(self):
        sim, interface, driver, sink = driver_rig()
        driver.load_packets([b"one"])
        sim.run_until(lambda: driver.idle, max_cycles=200)
        driver.load_packets([b"two"])
        sim.run_until(lambda: driver.idle, max_cycles=200)
        assert driver.packets_sent == 2


class TestStreamCollector:
    def test_collects_and_reassembles(self):
        from repro.channels.handshake import ChannelSource
        from repro.channels.axi_stream import pack_packet

        sim = Simulator()
        interface = axis_interface("out", manager="fpga")
        sim.add(interface)
        source = ChannelSource("src", interface.t)
        sim.add(source)
        collector = StreamCollector("col", interface, stall_probability=0.3,
                                    seed=2)
        sim.add(collector)
        for beat in pack_packet(b"payload!" * 10):
            source.send(beat)
        sim.run_until(lambda: source.idle, max_cycles=500)
        sim.run(5)
        assert collector.packets() == [b"payload!" * 10]
        assert collector.beats_received == 2   # 80 bytes -> 2 beats
