"""Unit and property tests for channels, payloads, and the protocol checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import (
    AXI4_SPECS,
    AXI_LITE_SPECS,
    Channel,
    ChannelSink,
    ChannelSource,
    Field,
    PayloadSpec,
    ProtocolChecker,
    axi4_interface,
    axi_lite_interface,
    total_payload_width,
)
from repro.errors import ProtocolViolationError, SimulationError
from repro.sim import Module, Simulator

WORD = PayloadSpec([Field("data", 32)])


def build_link(policy=None):
    """A source -> channel -> sink testbench; returns (sim, src, ch, sink)."""
    sim = Simulator()
    ch = Channel("ch", WORD)
    src = ChannelSource("src", ch)
    kwargs = {"policy": policy} if policy is not None else {}
    sink = ChannelSink("sink", ch, **kwargs)
    sim.add(ch)
    sim.add(src)
    sim.add(sink)
    return sim, src, ch, sink


class TestPayloadSpec:
    def test_pack_unpack_roundtrip(self):
        spec = PayloadSpec([Field("a", 4), Field("b", 12), Field("c", 1)])
        values = {"a": 0x9, "b": 0xABC, "c": 1}
        assert spec.unpack(spec.pack(values)) == values

    def test_pack_masks_overwide_values(self):
        spec = PayloadSpec([Field("a", 4)])
        assert spec.unpack(spec.pack({"a": 0xFF}))["a"] == 0xF

    def test_unknown_field_rejected(self):
        with pytest.raises(SimulationError):
            WORD.pack({"nope": 1})

    def test_duplicate_field_rejected(self):
        with pytest.raises(SimulationError):
            PayloadSpec([Field("a", 1), Field("a", 2)])

    def test_bytes_roundtrip(self):
        spec = PayloadSpec([Field("a", 13)])
        word = spec.pack({"a": 0x1ABC & 0x1FFF})
        assert spec.from_bytes(spec.to_bytes(word)) == word
        assert len(spec.to_bytes(word)) == 2

    def test_bytes_wrong_length_rejected(self):
        with pytest.raises(SimulationError):
            WORD.from_bytes(b"\x00")

    def test_extract_single_field(self):
        spec = PayloadSpec([Field("lo", 8), Field("hi", 8)])
        word = spec.pack({"lo": 0x34, "hi": 0x12})
        assert spec.extract(word, "hi") == 0x12

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                    max_size=8), st.randoms())
    @settings(max_examples=50)
    def test_roundtrip_property(self, widths, rng):
        fields = [Field(f"f{i}", w) for i, w in enumerate(widths)]
        spec = PayloadSpec(fields)
        values = {f.name: rng.getrandbits(f.width) for f in fields}
        assert spec.unpack(spec.pack(values)) == values


class TestHandshake:
    def test_single_transfer(self):
        sim, src, ch, sink = build_link()
        src.send({"data": 42})
        sim.run_until(lambda: len(sink.received) == 1, max_cycles=10)
        assert sink.received_dicts() == [{"data": 42}]

    def test_back_to_back_transfers(self):
        sim, src, ch, sink = build_link()
        for i in range(5):
            src.send({"data": i})
        start = sim.cycle
        sim.run_until(lambda: len(sink.received) == 5, max_cycles=20)
        # Always-ready sink: one transfer per cycle once the pipe is primed.
        assert sim.cycle - start <= 6
        assert [d["data"] for d in sink.received_dicts()] == [0, 1, 2, 3, 4]

    def test_stalling_sink_preserves_order_and_count(self):
        # READY high only every third cycle.
        sim, src, ch, sink = build_link(policy=lambda cyc, n: cyc % 3 == 0)
        for i in range(4):
            src.send({"data": 100 + i})
        sim.run_until(lambda: len(sink.received) == 4, max_cycles=100)
        assert [d["data"] for d in sink.received_dicts()] == [100, 101, 102, 103]

    def test_valid_held_until_ready(self):
        sim, src, ch, sink = build_link(policy=lambda cyc, n: False)
        src.send({"data": 7})
        sim.run(5)
        assert ch.valid.value == 1
        assert len(sink.received) == 0
        sink.policy = lambda cyc, n: True
        sim.run(3)
        assert len(sink.received) == 1

    def test_source_idle_flag(self):
        sim, src, ch, sink = build_link()
        assert src.idle
        src.send({"data": 1})
        assert not src.idle
        sim.run_until(lambda: src.idle, max_cycles=10)
        assert sink.received == [1]

    def test_channel_direction_validation(self):
        with pytest.raises(ValueError):
            Channel("bad", WORD, direction="sideways")

    def test_channel_width_includes_control(self):
        ch = Channel("c", WORD)
        assert ch.width == 34


class TestProtocolChecker:
    def test_clean_traffic_passes(self):
        sim, src, ch, sink = build_link()
        checker = ProtocolChecker("chk", ch)
        sim.add(checker)
        for i in range(3):
            src.send({"data": i})
        sim.run_until(lambda: len(sink.received) == 3, max_cycles=20)
        assert checker.violations == []
        assert checker.observed_transactions == 3

    def test_valid_retraction_detected(self):
        sim = Simulator()
        ch = Channel("ch", WORD)

        class RudeSender(Module):
            """Asserts VALID for one cycle then retracts without READY."""

            def __init__(self):
                super().__init__("rude")
                self._n = 0

            def comb(self):
                ch.valid.drive(1 if self._n == 0 else 0)
                ch.payload.drive(5)

            def seq(self):
                self._n += 1

        sim.add(ch)
        sim.add(RudeSender())
        checker = ProtocolChecker("chk", ch, strict=False)
        sim.add(checker)
        sim.run(4)
        assert any(v.rule == "valid-retracted" for v in checker.violations)

    def test_payload_mutation_detected_strict(self):
        sim = Simulator()
        ch = Channel("ch", WORD)

        class Mutator(Module):
            def __init__(self):
                super().__init__("mut")
                self._n = 0

            def comb(self):
                ch.valid.drive(1)
                ch.payload.drive(self._n)

            def seq(self):
                self._n += 1

        sim.add(ch)
        sim.add(Mutator())
        sim.add(ProtocolChecker("chk", ch, strict=True))
        with pytest.raises(ProtocolViolationError):
            sim.run(4)


class TestAxiBundles:
    def test_axi_lite_width_matches_paper(self):
        iface = axi_lite_interface("sda")
        assert iface.payload_width == 136

    def test_axi4_width_matches_paper(self):
        iface = axi4_interface("pcis")
        assert iface.payload_width == 1324

    def test_w_channel_is_593_bits(self):
        assert AXI4_SPECS["w"].width == 593

    def test_all_five_interfaces_total_3056_bits(self):
        interfaces = [
            axi_lite_interface("sda"),
            axi_lite_interface("ocl"),
            axi_lite_interface("bar1"),
            axi4_interface("pcim", manager="fpga"),
            axi4_interface("pcis"),
        ]
        assert total_payload_width(interfaces) == 3056

    def test_cpu_managed_directions(self):
        iface = axi_lite_interface("ocl", manager="cpu")
        assert [c.name.split(".")[-1] for c in iface.input_channels()] == ["aw", "w", "ar"]
        assert [c.name.split(".")[-1] for c in iface.output_channels()] == ["b", "r"]

    def test_fpga_managed_directions_reversed(self):
        iface = axi4_interface("pcim", manager="fpga")
        assert [c.name.split(".")[-1] for c in iface.input_channels()] == ["b", "r"]
        assert [c.name.split(".")[-1] for c in iface.output_channels()] == ["aw", "w", "ar"]

    def test_bad_manager_rejected(self):
        with pytest.raises(ValueError):
            axi4_interface("x", manager="gpu")


class TestHandshakePropertyBased:
    """Randomised stall storms: the formal-verification stand-in (§4.1)."""

    @given(
        payloads=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                          min_size=1, max_size=20),
        stall_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_drop_no_reorder_under_random_stalls(self, payloads, stall_seed):
        import random

        rng = random.Random(stall_seed)
        sim, src, ch, sink = build_link(policy=lambda cyc, n: rng.random() < 0.4)
        checker = ProtocolChecker("chk", ch, strict=True)
        sim.add(checker)
        for p in payloads:
            src.send({"data": p})
        sim.run_until(lambda: len(sink.received) == len(payloads),
                      max_cycles=40 * len(payloads) + 200)
        assert sink.received == payloads
        assert checker.observed_transactions == len(payloads)
