"""Direct unit tests for the pcis DMA engine's burst planning and the
monitor's runtime-window protocol safety."""

import pytest

from repro.channels import (
    Channel,
    ChannelSink,
    ChannelSource,
    Field,
    PayloadSpec,
    ProtocolChecker,
    axi4_interface,
)
from repro.core.encoder import TraceEncoder
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.monitor import ChannelMonitor
from repro.core.store import TraceStore
from repro.platform.cpu import DmaRead, DmaWrite, PcisDmaEngine
from repro.sim import Simulator


def make_engine(model_strobes=True):
    sim = Simulator()
    interface = axi4_interface("pcis")
    sim.add(interface)
    engine = PcisDmaEngine("eng", interface, model_strobes=model_strobes,
                           seed=0)
    sim.add(engine)
    return engine


class TestWritePlanning:
    def test_aligned_write_full_strobes(self):
        engine = make_engine()
        bursts = engine._plan_write(DmaWrite(0, b"\x11" * 128))
        assert len(bursts) == 1
        addr, beats = bursts[0]
        assert addr == 0 and len(beats) == 2
        assert all(strobe == (1 << 64) - 1 for _d, strobe in beats)

    def test_unaligned_write_head_and_tail_strobes(self):
        engine = make_engine()
        bursts = engine._plan_write(DmaWrite(10, b"\xAA" * 70))
        addr, beats = bursts[0]
        assert addr == 0                       # aligned base
        assert len(beats) == 2                 # bytes 10..79 span 2 words
        head_strobe = beats[0][1]
        tail_strobe = beats[1][1]
        assert head_strobe == (((1 << 54) - 1) << 10)   # lanes 10..63
        assert tail_strobe == (1 << 16) - 1             # lanes 0..15

    def test_vendor_sim_forces_alignment(self):
        engine = make_engine(model_strobes=False)
        bursts = engine._plan_write(DmaWrite(10, b"\xAA" * 70))
        addr, beats = bursts[0]
        assert addr == 0
        assert all(strobe == (1 << 64) - 1 for _d, strobe in beats)

    def test_long_write_splits_bursts(self):
        engine = make_engine()
        bursts = engine._plan_write(DmaWrite(0, b"\x00" * (64 * 20)))
        assert [len(beats) for _a, beats in bursts] == [8, 8, 4]
        assert [a for a, _b in bursts] == [0, 512, 1024]


class TestReadPlanning:
    def test_unaligned_read_covers_span(self):
        engine = make_engine()
        bursts = engine._plan_read(DmaRead(37, 50))   # bytes 37..86
        assert bursts == [(0, 2)]

    def test_long_read_splits(self):
        engine = make_engine()
        bursts = engine._plan_read(DmaRead(0, 64 * 11))
        assert bursts == [(0, 8), (512, 3)]


class TestMonitorWindowProtocolSafety:
    def test_toggling_mid_transaction_never_breaks_handshakes(self):
        """Disable takes effect between transactions: the in-flight one is
        completed and logged; no VALID retraction, no payload change."""
        word = PayloadSpec([Field("data", 8)])
        sim = Simulator()
        up = Channel("up", word, direction="in")
        down = Channel("down", word, direction="in")
        table = ChannelTable([ChannelInfo(index=0, name="c", direction="in",
                                          content_bytes=1, payload_bits=8)])
        store = TraceStore("store")
        encoder = TraceEncoder("enc", table, store)
        source = ChannelSource("src", up)
        gate = {"ready": False}
        sink = ChannelSink("snk", down, policy=lambda c, n: gate["ready"])
        monitor = ChannelMonitor("mon", 0, up, down, encoder, "in")
        checker_up = ProtocolChecker("cu", up, strict=True)
        checker_down = ProtocolChecker("cd", down, strict=True)
        for module in (up, down, source, sink, monitor, checker_up,
                       checker_down, encoder, store):
            sim.add(module)
        source.send({"data": 1})
        sim.run(4)                 # start logged, end pending (sink stalled)
        monitor.enabled = False    # toggle mid-transaction
        gate["ready"] = True
        sim.run(4)                 # transaction completes while "disabled"
        source.send({"data": 2})   # second transaction: not recorded
        sim.run_until(lambda: len(sink.received) == 2, max_cycles=30)
        store.flush()
        from repro.core.packets import deserialize_packets

        packets = deserialize_packets(store.trace_bytes, table, True)
        starts = sum(1 for p in packets if p.starts & 1)
        ends = sum(1 for p in packets if p.ends & 1)
        assert (starts, ends) == (1, 1)   # first txn fully recorded, second not
        assert checker_up.violations == []
        assert checker_down.violations == []
        assert sink.received == [1, 2]    # and nothing was dropped on the wire
