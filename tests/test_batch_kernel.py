"""Batched-kernel equivalence: N packed instances == N scalar runs.

The batch kernel (``repro.sim.batch``) is a pure wall-clock optimisation:
every observable — cycle counts, recorded trace bytes, store metrics,
host results, campaign verdicts — must be bit-identical to the scalar
path. These tests pin that contract across applications, schedulers and
every demotion path (structural mismatch at pack time, the busy-instance
probation probe, mid-grant catch-up flushes), plus the batched frontends
(``record_batch``, ``run_record_cells``, the campaign prerecord pass and
batched sharded replay).
"""

import pytest

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.core.divergence import compare_traces
from repro.errors import ConfigError, SimulationError
from repro.harness.batch_runner import (
    BatchRunner,
    record_batch,
    run_record_cells_batched,
)
from repro.harness.runner import SweepCell, record_run, run_record_cell
from repro.harness.sharded_replay import (
    record_with_checkpoints,
    replay_sharded,
)
from repro.platform import F1Deployment
from repro.sim.batch import BatchKernel

SEEDS = (0, 1)


def _scalar_reference(spec, config, scheduler):
    return [record_run(spec, config, seed, scheduler=scheduler)
            for seed in SEEDS]


def _assert_metrics_equal(scalar, batched):
    assert batched.cycles == scalar.cycles
    assert batched.trace_bytes == scalar.trace_bytes
    assert batched.stored_bytes == scalar.stored_bytes
    assert batched.store_stall_cycles == scalar.store_stall_cycles
    assert (batched.result["trace"].to_bytes()
            == scalar.result["trace"].to_bytes())


@pytest.mark.parametrize("scheduler", ["event", "fixpoint", "compiled"])
@pytest.mark.parametrize("app", ["sha256", "mobilenet", "bnn"])
def test_batched_record_matches_scalar(app, scheduler):
    """record_batch == N record_run calls, bit for bit, on every kernel.

    ``fixpoint`` has no event-style elaboration to pack, so the runner
    silently falls back to scalar — same contract, zero packed instances.
    """
    spec = get_app(app)
    config = VidiConfig.r2()
    scalar = _scalar_reference(spec, config, scheduler)
    batched = record_batch(spec, config, list(SEEDS), scheduler=scheduler)
    for ref, got in zip(scalar, batched):
        _assert_metrics_equal(ref, got)


def test_forced_demotion_stays_bit_identical(monkeypatch):
    """An instance demoted mid-run finishes scalar with identical results.

    Shrinking the probation window and demanding an impossible skip ratio
    demotes every instance after a handful of executed rounds — right in
    the middle of outstanding burn grants, so the scalar continuation is
    only exact if ``_flush_catchups`` delivered the pending elapsed
    cycles on the way out.
    """
    monkeypatch.setattr(BatchKernel, "DEMOTE_PROBE", 8)
    monkeypatch.setattr(BatchKernel, "DEMOTE_MIN_SKIP", 1.01)
    spec = get_app("sha256")
    config = VidiConfig.r2()
    scalar = _scalar_reference(spec, config, "compiled")
    batched = record_batch(spec, config, list(SEEDS), scheduler="compiled")
    for ref, got in zip(scalar, batched):
        _assert_metrics_equal(ref, got)


def test_pack_splits_structurally_divergent_instances():
    """pack() batches only same-topology sims; the rest go scalar."""
    sha = get_app("sha256")
    bnn = get_app("bnn")

    def deployment(spec, seed):
        acc_factory, host_factory = spec.make()
        dep = F1Deployment(f"pk_{spec.key}_{seed}", acc_factory,
                           VidiConfig.r2(), seed=seed, scheduler="compiled")
        dep.cpu.add_thread(host_factory({}, seed=seed))
        return dep

    deps = [deployment(sha, 0), deployment(bnn, 0), deployment(sha, 1)]
    kernel, packed, scalar = BatchKernel.pack([d.sim for d in deps])
    assert kernel is not None
    assert packed == [0, 2]
    assert scalar == [1]
    kernel.detach_all()


def test_batch_kernel_rejects_fixpoint_elaboration():
    spec = get_app("sha256")
    acc_factory, host_factory = spec.make()
    dep = F1Deployment("fx", acc_factory, VidiConfig.r2(), seed=0,
                       scheduler="fixpoint")
    dep.cpu.add_thread(host_factory({}, seed=0))
    with pytest.raises(SimulationError):
        BatchKernel([dep.sim])
    kernel, packed, scalar = BatchKernel.pack([dep.sim])
    assert kernel is None and packed == [] and scalar == [0]


def test_record_batch_error_containment():
    """on_error='return' delivers one instance's failure as its entry."""
    from repro.platform.cpu import WaitCycles

    spec = get_app("sha256")
    config = VidiConfig.r2()

    def exploding():
        yield WaitCycles(16)
        raise RuntimeError("sabotaged instance")

    def sabotage(deployment, i):
        if i == 1:
            deployment.cpu.add_thread(exploding())

    results = record_batch(spec, config, [0, 1, 2], before_run=sabotage,
                           on_error="return")
    assert isinstance(results[1], RuntimeError)
    assert not isinstance(results[0], BaseException)
    assert not isinstance(results[2], BaseException)
    reference = record_run(spec, config, 0)
    _assert_metrics_equal(reference, results[0])
    with pytest.raises(RuntimeError):
        record_batch(spec, config, [0, 1, 2], before_run=sabotage)


def test_run_record_cells_matches_scalar_worker():
    """Batched sweep cells return the scalar worker's dicts, in order."""
    cells = [SweepCell(app="sha256", config="r2", seed=s,
                       scheduler="compiled") for s in SEEDS]
    # A shape-mismatched straggler exercises the grouping.
    cells.append(SweepCell(app="bnn", config="r2", seed=0,
                           scheduler="compiled"))
    scalar = [run_record_cell(cell) for cell in cells]
    batched = run_record_cells_batched(cells)
    assert batched == scalar


def test_batch_runner_validates_arguments():
    with pytest.raises(ConfigError):
        BatchRunner(batch_size=0)
    with pytest.raises(ConfigError):
        record_batch(get_app("sha256"), VidiConfig.r2(), [0],
                     on_error="ignore")


def test_batched_campaign_matches_scalar_verdicts():
    """batch_size only changes wall-clock: trial-for-trial same verdicts."""
    from repro.faults import run_campaign

    scalar = run_campaign(app="sha256", n_faults=10, seed=7)
    batched = run_campaign(app="sha256", n_faults=10, seed=7, batch_size=4)
    assert ([(t.index, t.kind, t.seed, t.outcome, t.detail)
             for t in scalar.trials]
            == [(t.index, t.kind, t.seed, t.outcome, t.detail)
                for t in batched.trials])


def test_batched_sharded_replay_matches_inline():
    """Batched segment replay stitches the exact scalar validation trace."""
    spec = get_app("sha256")
    metrics, checkpoints = record_with_checkpoints(spec, seed=3,
                                                   scheduler="compiled")
    trace = metrics.result["trace"]
    reference = replay_sharded(spec, trace, checkpoints, segments=4,
                               jobs=1, scheduler="compiled")
    batched = replay_sharded(spec, trace, checkpoints, segments=4,
                             batched=True, scheduler="compiled")
    assert bytes(batched.validation.body) == bytes(reference.validation.body)
    assert ([s["cycles"] for s in batched.shards]
            == [s["cycles"] for s in reference.shards])
    assert compare_traces(trace, batched.validation).clean


def test_batched_sharded_replay_refuses_crash_injection():
    """Worker-crash plans need worker processes; batched replay is inline."""
    from repro.faults.injector import FaultInjector, FaultPlan

    spec = get_app("sha256")
    metrics, checkpoints = record_with_checkpoints(spec, seed=3,
                                                   scheduler="compiled")
    trace = metrics.result["trace"]
    injector = FaultInjector(FaultPlan.parse("worker-crash:crashes=1"))
    with pytest.raises(ConfigError):
        replay_sharded(spec, trace, checkpoints, segments=2, batched=True,
                       injector=injector)
