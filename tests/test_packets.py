"""Unit and property tests for trace packets, contents packing, trace files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contents_tree import pack_contents, unpack_contents
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.packets import (
    CyclePacket,
    deserialize_packets,
    iter_bits,
    serialize_packets,
)
from repro.core.trace_file import TraceFile
from repro.errors import ConfigError, TraceFormatError


def make_table(directions=("in", "in", "out", "out"), content_bytes=(4, 8, 2, 4)):
    return ChannelTable([
        ChannelInfo(index=i, name=f"ch{i}", direction=d,
                    content_bytes=b, payload_bits=b * 8)
        for i, (d, b) in enumerate(zip(directions, content_bytes))
    ])


class TestChannelTable:
    def test_indices_must_be_sequential(self):
        with pytest.raises(ConfigError):
            ChannelTable([ChannelInfo(index=1, name="x", direction="in",
                                      content_bytes=1, payload_bits=8)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            ChannelTable([
                ChannelInfo(index=0, name="x", direction="in",
                            content_bytes=1, payload_bits=8),
                ChannelInfo(index=1, name="x", direction="out",
                            content_bytes=1, payload_bits=8),
            ])

    def test_roundtrip_through_dict(self):
        table = make_table()
        again = ChannelTable.from_dict(table.to_dict())
        assert again.to_dict() == table.to_dict()

    def test_input_output_partition(self):
        table = make_table()
        assert table.input_indices == (0, 1)
        assert table.output_indices == (2, 3)

    def test_by_name(self):
        table = make_table()
        assert table.by_name("ch2").direction == "out"
        with pytest.raises(ConfigError):
            table.by_name("nope")

    def test_bad_direction_rejected(self):
        with pytest.raises(ConfigError):
            ChannelInfo(index=0, name="x", direction="sideways",
                        content_bytes=1, payload_bits=8)


class TestContentsTree:
    def test_pack_orders_by_index(self):
        blob = pack_contents([(3, b"CC"), (0, b"A"), (2, b"BB")])
        assert blob == b"ABBCC"

    def test_unpack_roundtrip(self):
        table = make_table()
        entries = {0: b"\x01\x02\x03\x04", 1: b"\x10" * 8}
        blob = pack_contents(entries.items())
        assert unpack_contents(blob, [0, 1], table) == entries

    def test_unpack_trailing_bytes_rejected(self):
        table = make_table()
        with pytest.raises(TraceFormatError):
            unpack_contents(b"\x00" * 5, [0], table)

    def test_unpack_truncated_rejected(self):
        table = make_table()
        with pytest.raises(TraceFormatError):
            unpack_contents(b"\x00" * 3, [0], table)

    def test_duplicate_entries_rejected(self):
        with pytest.raises(TraceFormatError):
            pack_contents([(0, b"a"), (0, b"b")])

    def test_empty_pack(self):
        assert pack_contents([]) == b""


class TestCyclePacket:
    def test_serialize_deserialize_roundtrip(self):
        table = make_table()
        packet = CyclePacket(
            starts=0b0011, ends=0b1101,
            contents={0: b"\xaa" * 4, 1: b"\xbb" * 8},
            validation={2: b"\x01\x02", 3: b"\x03\x04\x05\x06"},
        )
        blob = packet.serialize(table, with_validation=True)
        out, consumed = CyclePacket.deserialize(memoryview(blob), 0, table, True)
        assert consumed == len(blob)
        assert out.starts == packet.starts
        assert out.ends == packet.ends
        assert out.contents == packet.contents
        assert out.validation == packet.validation

    def test_no_validation_mode_skips_output_contents(self):
        table = make_table()
        packet = CyclePacket(starts=0b01, ends=0b0100,
                             contents={0: b"\x00" * 4})
        blob = packet.serialize(table, with_validation=False)
        out, _ = CyclePacket.deserialize(memoryview(blob), 0, table, False)
        assert out.validation == {}
        assert out.ends == 0b0100

    def test_start_on_output_channel_rejected(self):
        table = make_table()
        packet = CyclePacket(starts=0b0100, ends=0)
        blob = packet.serialize(table, with_validation=False)
        with pytest.raises(TraceFormatError):
            CyclePacket.deserialize(memoryview(blob), 0, table, False)

    def test_empty_packet_rejected_on_decode(self):
        table = make_table()
        blob = CyclePacket(starts=0, ends=0).serialize(table, False)
        with pytest.raises(TraceFormatError):
            CyclePacket.deserialize(memoryview(blob), 0, table, False)

    def test_channel_packet_decomposition(self):
        packet = CyclePacket(starts=0b01, ends=0b11,
                             contents={0: b"\x12\x00\x00\x00"})
        cp0 = packet.channel_packet(0)
        assert cp0.start and cp0.end and cp0.content == b"\x12\x00\x00\x00"
        cp1 = packet.channel_packet(1)
        assert not cp1.start and cp1.end and cp1.content is None

    def test_iter_bits(self):
        assert iter_bits(0b1011, 4) == [0, 1, 3]
        with pytest.raises(TraceFormatError):
            iter_bits(1 << 10, 4)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_stream_roundtrip_property(self, data):
        table = make_table()
        n_packets = data.draw(st.integers(min_value=1, max_value=12))
        packets = []
        for _ in range(n_packets):
            starts = data.draw(st.integers(min_value=0, max_value=0b11))
            ends = data.draw(st.integers(min_value=0, max_value=0b1111))
            if starts == 0 and ends == 0:
                ends = 0b1000
            contents = {
                i: bytes(data.draw(st.binary(min_size=table[i].content_bytes,
                                             max_size=table[i].content_bytes)))
                for i in iter_bits(starts, 4)
            }
            validation = {
                i: bytes(data.draw(st.binary(min_size=table[i].content_bytes,
                                             max_size=table[i].content_bytes)))
                for i in iter_bits(ends, 4) if not table.is_input(i)
            }
            packets.append(CyclePacket(starts=starts, ends=ends,
                                       contents=contents, validation=validation))
        blob = serialize_packets(packets, table, True)
        out = deserialize_packets(blob, table, True)
        assert len(out) == len(packets)
        for a, b in zip(packets, out):
            assert (a.starts, a.ends, a.contents, a.validation) == \
                   (b.starts, b.ends, b.contents, b.validation)


class TestTraceFile:
    def test_bytes_roundtrip(self):
        table = make_table()
        packets = [CyclePacket(starts=0b01, ends=0b01,
                               contents={0: b"\x01\x02\x03\x04"})]
        trace = TraceFile.from_packets(table, packets, with_validation=True,
                                       metadata={"app": "toy", "seed": 3})
        again = TraceFile.from_bytes(trace.to_bytes())
        assert again.body == trace.body
        assert again.metadata == {"app": "toy", "seed": 3}
        assert again.with_validation
        assert again.table.to_dict() == table.to_dict()

    def test_save_load(self, tmp_path):
        table = make_table()
        trace = TraceFile.from_packets(
            table, [CyclePacket(ends=0b1000, validation={3: b"\0" * 4})])
        path = tmp_path / "t.vidi"
        trace.save(path)
        assert TraceFile.load(path).body == trace.body

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceFile.from_bytes(b"NOTATRACE" + b"\0" * 32)

    def test_size_bytes(self):
        table = make_table()
        trace = TraceFile.from_packets(
            table, [CyclePacket(ends=0b0001)], with_validation=False)
        assert trace.size_bytes == 2  # two 1-byte bitvectors, no contents
