"""Tests for the harness: runner metrics, experiment drivers, and the CLI."""

import pytest

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.errors import ConfigError
from repro.harness.runner import (
    OverheadStats,
    SweepCell,
    bench_config,
    overhead_experiment,
    record_run,
    replay_run,
    run_cells,
    run_record_cell,
)


class TestRunner:
    def test_record_run_metrics_fields(self):
        spec = get_app("sha256")
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=9,
                             scale=0.3)
        assert metrics.app == "sha256"
        assert metrics.mode == "record"
        assert metrics.cycles > 0
        assert metrics.trace_bytes > 0
        assert metrics.stored_bytes >= metrics.trace_bytes
        assert metrics.monitored_transactions > 0
        assert metrics.seconds == pytest.approx(metrics.cycles / 250e6)

    def test_r1_run_has_no_trace(self):
        spec = get_app("sha256")
        metrics = record_run(spec, bench_config(VidiConfig.r1), seed=9,
                             scale=0.3)
        assert metrics.trace_bytes == 0
        assert "trace" not in metrics.result

    def test_record_run_rejects_replay_config(self):
        spec = get_app("sha256")
        with pytest.raises(ConfigError):
            record_run(spec, VidiConfig.r3(), seed=1)

    def test_replay_run_returns_validation(self):
        spec = get_app("sha256")
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=9,
                             scale=0.3)
        replay = replay_run(spec, metrics.result["trace"])
        assert replay.mode == "replay"
        assert "validation" in replay.result
        assert replay.result["validation"].size_bytes > 0

    def test_overhead_stats_math(self):
        stats = OverheadStats(app="x", r1_cycles=[100, 100],
                              r2_cycles=[110, 110])
        assert stats.mean_overhead_pct == pytest.approx(10.0)
        assert stats.std_overhead_pct == pytest.approx(0.0)

    def test_overhead_experiment_sampling(self):
        spec = get_app("sha256")
        stats = overhead_experiment(spec, runs=2, base_seed=400, scale=0.3)
        assert len(stats.r1_cycles) == 2
        assert len(stats.r2_cycles) == 2


class TestExperimentDrivers:
    def test_cycle_accurate_constant(self):
        from repro.harness.experiments import (
            CYCLE_ACCURATE_BITS_PER_CYCLE,
            CYCLE_ACCURATE_BYTES_PER_CYCLE,
        )
        # 14 input channels' payload+VALID plus 11 output READYs.
        assert CYCLE_ACCURATE_BITS_PER_CYCLE == 1649
        assert CYCLE_ACCURATE_BYTES_PER_CYCLE == 207

    def test_table2_driver(self):
        from repro.harness.experiments import render_table2, run_table2

        rows = run_table2()
        assert len(rows) == 10
        text = render_table2(rows)
        assert "DMA" in text and "paper" in text

    def test_fig7_driver(self):
        from repro.harness.experiments import run_fig7

        points = run_fig7()
        assert [p.monitored_bits for p in points][0] == 136

    def test_panopticon_driver(self):
        from repro.harness.experiments import run_panopticon

        envelope, rows = run_panopticon()
        assert envelope.loses_data
        assert len(rows) == 10


class TestParallelSweeps:
    CELLS = [
        SweepCell("sha256", "r1", 700, scale=0.3),
        SweepCell("sha256", "r2", 701, scale=0.3),
        SweepCell("sha256", "r2", 702, scale=0.3),
    ]

    def test_record_cell_worker_is_picklable_metrics(self):
        row = run_record_cell(self.CELLS[1])
        assert row["app"] == "sha256" and row["config"] == "r2"
        assert row["cycles"] > 0 and row["trace_bytes"] > 0

    def test_inline_matches_sequential(self):
        inline = run_cells(self.CELLS, run_record_cell, jobs=1)
        assert inline == [run_record_cell(c) for c in self.CELLS]

    def test_parallel_matches_inline_in_order(self):
        """Sharding across processes must not change a single number, and
        results must come back in cell order."""
        inline = run_cells(self.CELLS, run_record_cell, jobs=None)
        parallel = run_cells(self.CELLS, run_record_cell, jobs=2)
        assert parallel == inline
        assert [r["seed"] for r in parallel] == [700, 701, 702]

    def test_table1_results_independent_of_jobs(self):
        from repro.harness.experiments import run_table1

        seq = run_table1(runs=1, apps=["sha256"], base_seed=800, jobs=1)
        par = run_table1(runs=1, apps=["sha256"], base_seed=800, jobs=2)
        assert [(r.app.key, r.native_cycles, r.overhead_pct, r.trace_bytes)
                for r in seq] == \
               [(r.app.key, r.native_cycles, r.overhead_pct, r.trace_bytes)
                for r in par]


class TestHarnessCli:
    def test_fast_artifacts(self, capsys, tmp_path):
        from repro.harness.__main__ import main

        out_file = tmp_path / "fast.txt"
        assert main(["fast", "-o", str(out_file)]) == 0
        printed = capsys.readouterr().out
        assert "Table 2" in printed
        assert "Fig. 7" in printed
        assert "Panopticon" in printed or "envelope" in printed
        assert out_file.exists()
        assert "Table 2" in out_file.read_text()

    def test_single_artifact(self, capsys):
        from repro.harness.__main__ import main

        assert main(["table2"]) == 0
        assert "BRAM" in capsys.readouterr().out

    def test_unknown_artifact_rejected(self, capsys):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(["table9"])
