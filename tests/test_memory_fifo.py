"""Unit tests for memory primitives and FIFOs (incl. the buggy frame FIFO)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.fifo import FrameFIFO, SyncFIFO
from repro.sim.memory import RegisterFile, WordMemory


class TestWordMemory:
    def test_write_read_word(self):
        mem = WordMemory("m", 1024, word_bytes=64)
        mem.write_word(64, 0xDEADBEEF)
        assert mem.read_word(64) == 0xDEADBEEF

    def test_uninitialised_reads_zero(self):
        mem = WordMemory("m", 1024, word_bytes=64)
        assert mem.read_word(128) == 0

    def test_partial_strobe_merges_bytes(self):
        mem = WordMemory("m", 256, word_bytes=4)
        mem.write_word(0, 0xAABBCCDD)
        mem.write_word(0, 0x11223344, strobe=0b0101)   # bytes 0 and 2
        assert mem.read_word(0) == 0xAA22CC44

    def test_full_strobe_equivalent_to_none(self):
        mem = WordMemory("m", 256, word_bytes=4)
        mem.write_word(4, 0x12345678, strobe=0xF)
        assert mem.read_word(4) == 0x12345678

    def test_unaligned_word_access_rejected(self):
        mem = WordMemory("m", 256, word_bytes=4)
        with pytest.raises(SimulationError):
            mem.read_word(3)

    def test_out_of_range_rejected(self):
        mem = WordMemory("m", 256, word_bytes=4)
        with pytest.raises(SimulationError):
            mem.write_word(256, 1)

    def test_size_must_be_word_multiple(self):
        with pytest.raises(SimulationError):
            WordMemory("m", 100, word_bytes=64)

    def test_byte_level_roundtrip_unaligned(self):
        mem = WordMemory("m", 1024, word_bytes=64)
        payload = bytes(range(100))
        mem.write_bytes(13, payload)
        assert mem.read_bytes(13, 100) == payload

    def test_byte_write_preserves_neighbours(self):
        mem = WordMemory("m", 1024, word_bytes=64)
        mem.write_bytes(0, b"\xFF" * 64)
        mem.write_bytes(10, b"\x00\x01")
        data = mem.read_bytes(0, 64)
        assert data[9] == 0xFF and data[10] == 0x00
        assert data[11] == 0x01 and data[12] == 0xFF

    @given(st.integers(min_value=0, max_value=200),
           st.binary(min_size=1, max_size=120))
    @settings(max_examples=40)
    def test_bytes_roundtrip_property(self, addr, payload):
        mem = WordMemory("m", 4096, word_bytes=64)
        mem.write_bytes(addr, payload)
        assert mem.read_bytes(addr, len(payload)) == payload

    def test_clear(self):
        mem = WordMemory("m", 256, word_bytes=64)
        mem.write_word(0, 42)
        mem.clear()
        assert mem.read_word(0) == 0


class TestRegisterFile:
    def test_read_write(self):
        regs = RegisterFile("r", 8)
        regs.write(4, 0x1234)
        assert regs.read(4) == 0x1234
        assert regs[1] == 0x1234

    def test_values_truncated_to_32_bits(self):
        regs = RegisterFile("r", 4)
        regs[0] = 0x1_FFFF_FFFF
        assert regs[0] == 0xFFFF_FFFF

    def test_unaligned_rejected(self):
        regs = RegisterFile("r", 4)
        with pytest.raises(SimulationError):
            regs.read(2)

    def test_out_of_range_rejected(self):
        regs = RegisterFile("r", 4)
        with pytest.raises(SimulationError):
            regs.write(16, 0)


class TestSyncFIFO:
    def test_order_preserved(self):
        fifo = SyncFIFO("f", 4)
        for i in range(4):
            fifo.push(i)
        assert [fifo.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_full_and_empty_flags(self):
        fifo = SyncFIFO("f", 2)
        assert fifo.is_empty and not fifo.is_full
        fifo.push(1)
        fifo.push(2)
        assert fifo.is_full and fifo.space == 0

    def test_push_when_full_raises(self):
        fifo = SyncFIFO("f", 1)
        fifo.push(1)
        with pytest.raises(SimulationError):
            fifo.push(2)

    def test_pop_when_empty_raises(self):
        with pytest.raises(SimulationError):
            SyncFIFO("f", 1).pop()

    def test_peek_leaves_item(self):
        fifo = SyncFIFO("f", 2)
        fifo.push(7)
        assert fifo.peek() == 7
        assert len(fifo) == 1


class TestFrameFIFO:
    def test_correct_fifo_blocks_whole_frames(self):
        fifo = FrameFIFO("f", capacity_fragments=32, frame_size=16)
        for i in range(16):
            assert fifo.ready_for_push()
            fifo.push(i)
        # 16 slots left: exactly one more frame fits.
        assert fifo.ready_for_push()
        for i in range(16):
            fifo.push(100 + i)
        # Now full: a third frame must be refused at its *first* fragment.
        assert not fifo.ready_for_push()
        with pytest.raises(SimulationError):
            fifo.push(0)
        assert fifo.dropped_fragments == 0

    def test_correct_fifo_refuses_partial_fit(self):
        fifo = FrameFIFO("f", capacity_fragments=24, frame_size=16)
        for i in range(16):
            fifo.push(i)
        # 8 slots remain — not enough for a 16-fragment frame.
        assert not fifo.ready_for_push()

    def test_buggy_fifo_drops_mid_frame(self):
        """The §5.2 bug: unaligned remaining capacity drops fragments."""
        fifo = FrameFIFO("f", capacity_fragments=24, frame_size=16,
                         buggy=True)
        for i in range(16):
            fifo.push(i)
        # Buggy readiness is per-fragment: the second frame starts although
        # only 8 slots remain; its tail fragments are silently lost.
        stored = sum(1 for i in range(16) if fifo.push(100 + i))
        assert stored == 8
        assert fifo.dropped_fragments == 8
        assert fifo.dropped_log == [100 + i for i in range(8, 16)]

    def test_buggy_fifo_data_order_of_survivors(self):
        fifo = FrameFIFO("f", capacity_fragments=16, frame_size=16,
                         buggy=True)
        for i in range(20):
            fifo.push(i)
        assert [fifo.pop() for _ in range(16)] == list(range(16))

    def test_capacity_must_hold_a_frame(self):
        with pytest.raises(SimulationError):
            FrameFIFO("f", capacity_fragments=8, frame_size=16)

    def test_clear_resets_drop_accounting(self):
        fifo = FrameFIFO("f", 16, 16, buggy=True)
        for i in range(20):
            fifo.push(i)
        fifo.clear()
        assert fifo.dropped_fragments == 0 and fifo.is_empty
