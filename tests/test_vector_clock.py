"""Unit and property tests for vector clocks and happens-before relations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import TransactionEvent, happens_before
from repro.core.vector_clock import VectorClock
from repro.errors import ConfigError, ReplayError


class TestVectorClock:
    def test_initial_zero(self):
        clock = VectorClock(4)
        assert clock.as_tuple() == (0, 0, 0, 0)

    def test_increment(self):
        clock = VectorClock(3)
        clock.increment(1)
        clock.increment(1)
        clock.increment(2)
        assert clock.as_tuple() == (0, 2, 1)

    def test_from_sequence(self):
        assert VectorClock([3, 1]).as_tuple() == (3, 1)

    def test_advance_by_mask(self):
        clock = VectorClock(4)
        clock.advance_by_mask(0b1010)
        clock.advance_by_mask(0b0010)
        assert clock.as_tuple() == (0, 2, 0, 1)

    def test_advance_mask_too_wide_rejected(self):
        with pytest.raises(ReplayError):
            VectorClock(2).advance_by_mask(0b100)

    def test_geq_reflexive(self):
        clock = VectorClock([1, 2, 3])
        assert clock.geq(clock)

    def test_geq_componentwise(self):
        assert VectorClock([2, 2]).geq(VectorClock([1, 2]))
        assert not VectorClock([2, 1]).geq(VectorClock([1, 2]))

    def test_geq_width_mismatch_rejected(self):
        with pytest.raises(ReplayError):
            VectorClock(2).geq(VectorClock(3))

    def test_copy_is_independent(self):
        a = VectorClock([1, 1])
        b = a.copy()
        b.increment(0)
        assert a.as_tuple() == (1, 1)
        assert b.as_tuple() == (2, 1)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=8),
           st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=8))
    @settings(max_examples=60)
    def test_geq_is_a_partial_order(self, a_counts, b_counts):
        n = min(len(a_counts), len(b_counts))
        a = VectorClock(a_counts[:n])
        b = VectorClock(b_counts[:n])
        # Antisymmetry: mutual geq implies equality.
        if a.geq(b) and b.geq(a):
            assert a.as_tuple() == b.as_tuple()
        # geq agrees with componentwise definition.
        assert a.geq(b) == all(x >= y for x, y in zip(a.counts, b.counts))

    @given(st.data())
    @settings(max_examples=40)
    def test_advance_monotone(self, data):
        n = data.draw(st.integers(min_value=1, max_value=6))
        clock = VectorClock(n)
        for _ in range(data.draw(st.integers(min_value=0, max_value=10))):
            before = clock.copy()
            clock.advance_by_mask(
                data.draw(st.integers(min_value=0, max_value=(1 << n) - 1)))
            assert clock.geq(before)


class TestHappensBefore:
    def event(self, vclock, channel=0, seq_no=0):
        return TransactionEvent(kind="end", channel=channel, seq_no=seq_no,
                                vclock=vclock)

    def test_strictly_smaller_clock_happens_before(self):
        assert happens_before(self.event((0, 1)), self.event((1, 1)))

    def test_equal_clocks_not_ordered(self):
        assert not happens_before(self.event((1, 1)), self.event((1, 1)))

    def test_concurrent_events_not_ordered(self):
        assert not happens_before(self.event((1, 0)), self.event((0, 1)))
        assert not happens_before(self.event((0, 1)), self.event((1, 0)))

    def test_requires_clocks(self):
        bare = TransactionEvent(kind="end", channel=0, seq_no=0)
        with pytest.raises(ConfigError):
            happens_before(bare, self.event((1,)))

    def test_mismatched_widths_rejected(self):
        with pytest.raises(ConfigError):
            happens_before(self.event((1,)), self.event((1, 2)))

    def test_bad_event_kind_rejected(self):
        with pytest.raises(ConfigError):
            TransactionEvent(kind="middle", channel=0, seq_no=0)
