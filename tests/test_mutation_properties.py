"""Property-based tests: mutations keep traces structurally valid."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import ChannelInfo, ChannelTable
from repro.core.mutation import EventRef, TraceMutator
from repro.core.packets import CyclePacket
from repro.core.trace_file import TraceFile


def make_table(n_in=2, n_out=1):
    infos = []
    for i in range(n_in):
        infos.append(ChannelInfo(index=len(infos), name=f"in{i}",
                                 direction="in", content_bytes=2,
                                 payload_bits=16))
    for i in range(n_out):
        infos.append(ChannelInfo(index=len(infos), name=f"out{i}",
                                 direction="out", content_bytes=1,
                                 payload_bits=8))
    return ChannelTable(infos)


@st.composite
def random_trace(draw):
    """A structurally valid trace: per input channel, alternating
    start/end; output ends interleaved freely."""
    table = make_table()
    n_rounds = draw(st.integers(min_value=1, max_value=10))
    packets = []
    for round_index in range(n_rounds):
        for ch in table.input_indices:
            if draw(st.booleans()):
                content = bytes([round_index & 0xFF, ch])
                packets.append(CyclePacket(starts=1 << ch,
                                           contents={ch: content}))
                packets.append(CyclePacket(ends=1 << ch))
        for ch in table.output_indices:
            if draw(st.booleans()):
                packets.append(CyclePacket(
                    ends=1 << ch, validation={ch: bytes([round_index])}))
    if not packets:
        packets.append(CyclePacket(ends=1 << table.output_indices[0],
                                   validation={table.output_indices[0]: b"\0"}))
    return TraceFile.from_packets(table, packets, with_validation=True)


class TestMutationProperties:
    @given(random_trace(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_without_edits_is_identity(self, trace, data):
        mutator = TraceMutator(trace)
        rebuilt = mutator.build()
        assert rebuilt.packets() == trace.packets() or \
            [(p.starts, p.ends) for p in rebuilt.packets()] == \
            [(p.starts, p.ends) for p in trace.packets()]

    @given(random_trace(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_moving_output_ends_preserves_validity(self, trace, data):
        """Reordering output ends never invalidates input event structure."""
        table = trace.table
        out_name = table[table.output_indices[0]].name
        ends = 0
        for packet in trace.packets():
            if (packet.ends >> table.output_indices[0]) & 1:
                ends += 1
        if ends < 2:
            return
        moved = data.draw(st.integers(min_value=1, max_value=ends - 1))
        anchor = data.draw(st.integers(min_value=0, max_value=moved - 1))
        mutator = TraceMutator(trace)
        mutator.move_end_before(EventRef("end", out_name, moved),
                                EventRef("end", out_name, anchor))
        assert mutator.validate() is None
        # Event counts are conserved.
        rebuilt = mutator.build()
        count = 0
        for packet in rebuilt.packets():
            if (packet.ends >> table.output_indices[0]) & 1:
                count += 1
        assert count == ends

    @given(random_trace())
    @settings(max_examples=30, deadline=None)
    def test_serialization_roundtrip_after_build(self, trace):
        mutator = TraceMutator(trace)
        rebuilt = TraceFile.from_bytes(mutator.build().to_bytes())
        assert [(p.starts, p.ends) for p in rebuilt.packets()] == \
            [(p.starts, p.ends) for p in trace.packets()]

    @given(random_trace(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_drop_conserves_remaining_events(self, trace, data):
        table = trace.table
        ch = table.input_indices[0]
        starts = sum(1 for p in trace.packets() if (p.starts >> ch) & 1)
        if starts == 0:
            return
        occurrence = data.draw(st.integers(min_value=0, max_value=starts - 1))
        mutator = TraceMutator(trace)
        mutator.drop_event(EventRef("start", table[ch].name, occurrence))
        remaining = sum(1 for p in mutator.packets if (p.starts >> ch) & 1)
        assert remaining == starts - 1
