"""Tests for the VCD waveform exporter."""

from repro.channels import Channel, ChannelSink, ChannelSource, Field, PayloadSpec
from repro.sim import Simulator, WaveformRecorder
from repro.sim.vcd import _identifier, render_vcd, write_vcd

WORD = PayloadSpec([Field("data", 8)])


def record_some_traffic():
    sim = Simulator()
    channel = Channel("ch", WORD)
    source = ChannelSource("src", channel)
    sink = ChannelSink("sink", channel)
    for module in (channel, source, sink):
        sim.add(module)
    recorder = WaveformRecorder(sim, [channel.valid, channel.ready,
                                      channel.payload])
    for value in (0x10, 0x20):
        source.send({"data": value})
    sim.run(12)
    return recorder


class TestIdentifiers:
    def test_unique_and_printable(self):
        seen = {_identifier(i) for i in range(500)}
        assert len(seen) == 500
        assert all(all(33 <= ord(c) <= 126 for c in ident) for ident in seen)


class TestVcdText:
    def test_header_and_vars(self):
        vcd = render_vcd(record_some_traffic(), module="testbench")
        assert "$timescale 4ns $end" in vcd          # 250 MHz clock
        assert "$scope module testbench $end" in vcd
        assert "$var wire 1" in vcd                  # valid/ready rails
        assert "$var wire 8" in vcd                  # payload bus
        assert "$enddefinitions $end" in vcd

    def test_dumpvars_covers_all_signals(self):
        vcd = render_vcd(record_some_traffic())
        dump = vcd.split("$dumpvars")[1].split("$end")[0]
        assert len([l for l in dump.strip().splitlines() if l]) == 3

    def test_value_changes_present(self):
        vcd = render_vcd(record_some_traffic())
        body = vcd.split("$enddefinitions $end")[1]
        assert "#" in body
        assert "b10000 " in body or "b100000 " in body   # payload change

    def test_only_changes_are_emitted(self):
        recorder = record_some_traffic()
        vcd = render_vcd(recorder)
        # Timestamps without changes are suppressed: fewer timestamp lines
        # than simulated cycles.
        stamps = [l for l in vcd.splitlines() if l.startswith("#")]
        assert len(stamps) < len(recorder.values(recorder.signals[0]))

    def test_write_vcd(self, tmp_path):
        path = tmp_path / "wave.vcd"
        write_vcd(record_some_traffic(), path)
        content = path.read_text()
        assert content.startswith("$date")
        assert content.endswith("\n")
