"""Warm worker pool: reuse, affinity dispatch, surgical recycling.

Workers are observed through their PIDs: a reused pool answers from the
same process across calls, affinity routing sends equal schedule keys to
one worker, and a crash replaces exactly one slot while the survivors
keep their warm state. The cold-path churn fix is pinned the same way —
``run_cells`` must keep one executor across retry rounds unless a round
actually broke it.
"""

import os

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.harness import worker_pool
from repro.harness.runner import SweepCell, last_run_stats, run_cells
from repro.harness.worker_pool import WarmPool, _stable_slot
from repro.sim import schedule_store
from repro.sim.compile import clear_schedule_cache


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test gets its own module-level pool and zeroed counters."""
    worker_pool.shutdown_pool()
    worker_pool.reset_stats()
    yield
    worker_pool.shutdown_pool()
    os.environ.pop("REPRO_TEST_CRASH_FLAG", None)


def _pid_worker(cell):
    return {"seed": cell.seed, "pid": os.getpid()}


def _crash_once_worker(cell):
    """Hard-kill the worker for seed 999, once (flag file = already done)."""
    flag = os.environ["REPRO_TEST_CRASH_FLAG"]
    if cell.seed == 999 and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(13)
    return {"seed": cell.seed, "pid": os.getpid()}


def _fail_once_worker(cell):
    """Plain-exception twin: raises for seed 999, once."""
    flag = os.environ["REPRO_TEST_CRASH_FLAG"]
    if cell.seed == 999 and not os.path.exists(flag):
        open(flag, "w").close()
        raise ValueError("transient")
    return {"seed": cell.seed, "pid": os.getpid()}


def _pid_task():
    return os.getpid()


def _die_task():
    os._exit(13)


def _cells(n, app="x"):
    return [SweepCell(app=app, config="r2", seed=i) for i in range(n)]


def _keys_for_slots(size):
    """Affinity keys proven to land on slots 0 and 1 of a size-wide pool."""
    k0 = next(k for k in range(1000) if _stable_slot(("k", k), size) == 0)
    k1 = next(k for k in range(1000) if _stable_slot(("k", k), size) == 1)
    return ("k", k0), ("k", k1)


# ----------------------------------------------------------------------
# reuse and affinity
# ----------------------------------------------------------------------


def test_warm_pool_persists_across_run_cells_calls():
    cells = _cells(3)
    first = run_cells(cells, _pid_worker, jobs=2, warm_pool=True)
    second = run_cells(cells, _pid_worker, jobs=2, warm_pool=True)
    # Equal affinity (same app/config) routes every cell to one slot, and
    # that slot's worker process survives between calls.
    assert len({r["pid"] for r in first + second}) == 1
    assert last_run_stats["mode"] == "warm"


def test_affinity_routes_equal_keys_to_one_worker():
    jobs = 2
    cells = _cells(4, app="a") + _cells(4, app="b")
    results = run_cells(cells, _pid_worker, jobs=jobs, warm_pool=True)
    pid_by_slot = {}
    for cell, res in zip(cells, results):
        slot = _stable_slot(worker_pool.cell_affinity(cell), jobs)
        pid_by_slot.setdefault(slot, set()).add(res["pid"])
    # One worker per slot, no matter how many cells hashed there.
    assert all(len(pids) == 1 for pids in pid_by_slot.values())
    stats = worker_pool.pool_stats()
    # 8 dispatches, 2 first-contact misses (one per distinct key).
    assert stats["affinity_dispatches"] == 8
    assert stats["affinity_hits"] == 6
    assert stats["affinity_hit_rate"] == pytest.approx(0.75)


def test_recycle_replaces_only_the_broken_slot():
    k0, k1 = _keys_for_slots(2)
    pool = WarmPool(2)
    try:
        pid0 = pool.submit(_pid_task, affinity=k0).result()
        pid1 = pool.submit(_pid_task, affinity=k1).result()
        assert pid0 != pid1
        with pytest.raises(BrokenProcessPool):
            pool.submit(_die_task, affinity=k0).result()
        pool.recycle(0)
        assert pool.submit(_pid_task, affinity=k0).result() != pid0
        # The untouched slot still answers from its original process.
        assert pool.submit(_pid_task, affinity=k1).result() == pid1
        assert worker_pool.pool_stats()["workers_recycled"] == 1
    finally:
        pool.shutdown()


def test_run_cells_warm_recovers_from_worker_crash(tmp_path):
    os.environ["REPRO_TEST_CRASH_FLAG"] = str(tmp_path / "crashed")
    cells = _cells(3) + [SweepCell(app="x", config="r2", seed=999)]
    results = run_cells(cells, _crash_once_worker, jobs=2, retries=2,
                        warm_pool=True)
    assert [r["seed"] for r in results] == [0, 1, 2, 999]
    assert worker_pool.pool_stats()["workers_recycled"] >= 1


def test_run_cells_warm_exception_retry_keeps_workers(tmp_path):
    os.environ["REPRO_TEST_CRASH_FLAG"] = str(tmp_path / "failed")
    cells = _cells(2) + [SweepCell(app="x", config="r2", seed=999)]
    results = run_cells(cells, _fail_once_worker, jobs=2, retries=1,
                        warm_pool=True)
    assert [r["seed"] for r in results] == [0, 1, 999]
    # A plain exception leaves the worker healthy: nothing recycled.
    assert worker_pool.pool_stats()["workers_recycled"] == 0


# ----------------------------------------------------------------------
# cold-path churn fix
# ----------------------------------------------------------------------


def test_cold_path_reuses_pool_across_retry_rounds(tmp_path):
    os.environ["REPRO_TEST_CRASH_FLAG"] = str(tmp_path / "failed")
    cells = _cells(3) + [SweepCell(app="x", config="r2", seed=999)]
    results = run_cells(cells, _fail_once_worker, jobs=2, retries=2)
    assert [r["seed"] for r in results] == [0, 1, 2, 999]
    # Two rounds ran, but the surviving pool was reused: one executor.
    assert last_run_stats["rounds"] == 2
    assert last_run_stats["pools_created"] == 1


def test_cold_path_rebuilds_pool_only_after_crash(tmp_path):
    os.environ["REPRO_TEST_CRASH_FLAG"] = str(tmp_path / "crashed")
    cells = _cells(3) + [SweepCell(app="x", config="r2", seed=999)]
    results = run_cells(cells, _crash_once_worker, jobs=2, retries=2)
    assert [r["seed"] for r in results] == [0, 1, 2, 999]
    assert last_run_stats["pools_created"] == 2


# ----------------------------------------------------------------------
# warm initializer: schedules pre-bound from the disk tier
# ----------------------------------------------------------------------


def _tier_worker(cell):
    from repro.apps.registry import get_app
    from repro.core import VidiConfig
    from repro.harness.runner import bench_config, record_run
    from repro.sim.compile import schedule_cache_stats

    metrics = record_run(get_app(cell.app), bench_config(VidiConfig.r2),
                         seed=cell.seed, scheduler="compiled")
    stats = schedule_cache_stats()
    return {"cycles": metrics.cycles, "disk_hits": stats["disk_hits"],
            "disk_misses": stats["disk_misses"]}


def test_warm_workers_prebind_schedules_from_disk(tmp_path):
    from repro.apps.registry import get_app
    from repro.core import VidiConfig
    from repro.harness.runner import bench_config, record_run

    prev = schedule_store.cache_dir()
    cache = tmp_path / "sched"
    try:
        clear_schedule_cache()
        schedule_store.configure(cache)
        # Seed the disk tier with a cold compile, then forget it in RAM
        # so the workers cannot inherit an in-process hit via fork.
        ref = record_run(get_app("sha256"), bench_config(VidiConfig.r2),
                         seed=5, scheduler="compiled")
        clear_schedule_cache()

        cells = [SweepCell(app="sha256", config="r2", seed=5,
                           scheduler="compiled")]
        (res,) = run_cells(cells * 2, _tier_worker, jobs=2, warm_pool=True,
                           cache_dir=str(cache))[:1]
        assert res["cycles"] == ref.cycles
        # The worker's first compile bound the preloaded disk entry.
        assert res["disk_hits"] >= 1
        assert res["disk_misses"] == 0
    finally:
        clear_schedule_cache()
        schedule_store.configure(str(prev) if prev is not None else None)
