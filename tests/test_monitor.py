"""Monitor + encoder + store tests: the formal-property stand-ins (§4.1).

The paper formally verified its channel monitor with JasperGold: intercepted
transactions handshake correctly, are never reordered, and are never
dropped — even when the trace encoder blocks. These tests assert the same
properties under randomised traffic and pathological store conditions.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import (
    Channel,
    ChannelSink,
    ChannelSource,
    Field,
    PayloadSpec,
    ProtocolChecker,
)
from repro.core.encoder import TraceEncoder
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.monitor import ChannelMonitor
from repro.core.packets import deserialize_packets
from repro.core.store import TraceStore
from repro.sim import Simulator

WORD = PayloadSpec([Field("data", 32)])


def build_rig(direction="in", staging=4096, bandwidth=64.0,
              record_output_contents=True, sink_policy=None):
    """One monitored channel: source -> up -> monitor -> down -> sink."""
    sim = Simulator()
    up = Channel("up", WORD, direction=direction)
    down = Channel("down", WORD, direction=direction)
    table = ChannelTable([ChannelInfo(
        index=0, name="down", direction=direction,
        content_bytes=WORD.byte_length, payload_bits=WORD.width)])
    store = TraceStore("store", staging_bytes=staging,
                       bandwidth_bytes_per_cycle=bandwidth)
    encoder = TraceEncoder("enc", table, store,
                           record_output_contents=record_output_contents)
    source = ChannelSource("src", up)
    kwargs = {"policy": sink_policy} if sink_policy else {}
    sink = ChannelSink("sink", down, **kwargs)
    monitor = ChannelMonitor("mon", 0, up, down, encoder, direction)
    for module in (up, down, source, sink, monitor, encoder, store):
        sim.add(module)
    return sim, source, sink, monitor, encoder, store, table


def recorded(store, table, with_validation=True):
    store.flush()
    return deserialize_packets(store.trace_bytes, table, with_validation)


class TestInputMonitor:
    def test_transparent_delivery(self):
        sim, src, sink, mon, enc, store, table = build_rig()
        for i in range(5):
            src.send({"data": 100 + i})
        sim.run_until(lambda: len(sink.received) == 5, max_cycles=50)
        assert [w for w in sink.received] == [100, 101, 102, 103, 104]
        assert mon.transactions == 5

    def test_start_and_end_recorded_with_content(self):
        sim, src, sink, mon, enc, store, table = build_rig()
        src.send({"data": 0xDEAD})
        sim.run_until(lambda: len(sink.received) == 1, max_cycles=20)
        packets = recorded(store, table)
        starts = [p for p in packets if p.starts & 1]
        ends = [p for p in packets if p.ends & 1]
        assert len(starts) == 1 and len(ends) == 1
        assert starts[0].contents[0] == (0xDEAD).to_bytes(4, "little")

    def test_start_end_same_cycle_single_packet(self):
        """A one-cycle handshake yields one packet with both bits set."""
        sim, src, sink, mon, enc, store, table = build_rig()
        sim.run(2)  # sink READY settles high before the transaction arrives
        src.send({"data": 1})
        sim.run_until(lambda: len(sink.received) == 1, max_cycles=20)
        packets = recorded(store, table)
        assert len(packets) == 1
        assert packets[0].starts == 1 and packets[0].ends == 1

    def test_stalled_receiver_start_before_end(self):
        cycle_gate = {"open": False}
        sim, src, sink, mon, enc, store, table = build_rig(
            sink_policy=lambda cyc, n: cycle_gate["open"])
        src.send({"data": 7})
        sim.run(10)
        cycle_gate["open"] = True
        sim.run_until(lambda: len(sink.received) == 1, max_cycles=20)
        packets = recorded(store, table)
        assert len(packets) == 2
        assert packets[0].starts == 1 and packets[0].ends == 0
        assert packets[1].starts == 0 and packets[1].ends == 1

    def test_backpressure_blocks_start_but_never_drops(self):
        """A tiny, slow store throttles admission; traffic still all arrives."""
        sim, src, sink, mon, enc, store, table = build_rig(
            staging=64, bandwidth=1.0)
        payloads = list(range(200, 230))
        for p in payloads:
            src.send({"data": p})
        sim.run_until(lambda: len(sink.received) == len(payloads),
                      max_cycles=5000)
        assert sink.received == payloads
        assert mon.stalled_cycles > 0   # back-pressure actually bit
        packets = recorded(store, table)
        assert sum(1 for p in packets if p.starts & 1) == len(payloads)
        assert sum(1 for p in packets if p.ends & 1) == len(payloads)

    def test_protocol_checker_clean_on_both_sides(self):
        sim, src, sink, mon, enc, store, table = build_rig(
            staging=64, bandwidth=1.0)
        up_check = ProtocolChecker("upc", mon.up, strict=True)
        down_check = ProtocolChecker("dnc", mon.down, strict=True)
        sim.add(up_check)
        sim.add(down_check)
        for i in range(10):
            src.send({"data": i})
        sim.run_until(lambda: len(sink.received) == 10, max_cycles=2000)
        assert up_check.violations == []
        assert down_check.violations == []


class TestOutputMonitor:
    def test_end_recorded_with_content(self):
        sim, src, sink, mon, enc, store, table = build_rig(direction="out")
        src.send({"data": 0xBEEF})
        sim.run_until(lambda: len(sink.received) == 1, max_cycles=20)
        packets = recorded(store, table)
        assert len(packets) == 1
        assert packets[0].starts == 0 and packets[0].ends == 1
        assert packets[0].validation[0] == (0xBEEF).to_bytes(4, "little")

    def test_no_content_when_validation_disabled(self):
        sim, src, sink, mon, enc, store, table = build_rig(
            direction="out", record_output_contents=False)
        src.send({"data": 0xBEEF})
        sim.run_until(lambda: len(sink.received) == 1, max_cycles=20)
        packets = recorded(store, table, with_validation=False)
        assert packets[0].ends == 1
        assert packets[0].validation == {}


class TestReservationProperty:
    """Hypothesis storms standing in for the JasperGold proof obligations."""

    @given(
        payloads=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                          min_size=1, max_size=25),
        staging=st.integers(min_value=64, max_value=256),
        bandwidth=st.floats(min_value=0.5, max_value=8.0),
        seed=st.integers(min_value=0, max_value=1 << 16),
    )
    @settings(max_examples=30, deadline=None)
    def test_no_drop_no_reorder_under_starved_store(self, payloads, staging,
                                                    bandwidth, seed):
        rng = random.Random(seed)
        sim, src, sink, mon, enc, store, table = build_rig(
            staging=staging, bandwidth=bandwidth,
            sink_policy=lambda cyc, n: rng.random() < 0.5)
        for p in payloads:
            src.send({"data": p})
        sim.run_until(lambda: len(sink.received) == len(payloads),
                      max_cycles=500 * len(payloads) + 2000)
        assert sink.received == payloads
        packets = recorded(store, table)
        contents = [p.contents[0] for p in packets if p.starts & 1]
        assert contents == [v.to_bytes(4, "little") for v in payloads]
        # End events were logged in their exact cycles: per-channel starts
        # and ends must strictly alternate in the packet stream.
        state = 0
        for packet in packets:
            if packet.starts & 1 and packet.ends & 1:
                assert state == 0
            elif packet.starts & 1:
                assert state == 0
                state = 1
            elif packet.ends & 1:
                assert state == 1
                state = 0
        assert state == 0


class TestEncoderErrors:
    def test_wrong_content_length_rejected(self):
        sim, src, sink, mon, enc, store, table = build_rig()
        sim.elaborate()
        with pytest.raises(Exception):
            enc.record_start(0, b"\x00")  # needs 5 bytes

    def test_start_on_output_channel_rejected(self):
        sim, src, sink, mon, enc, store, table = build_rig(direction="out")
        with pytest.raises(Exception):
            enc.record_start(0, b"\x00" * 5)
