"""Tests for the §4.1 DDR4-interface customisation."""

import pytest

from repro.apps import dram_dma_axi
from repro.apps.dram_dma import check
from repro.core import VidiConfig, compare_traces
from repro.core.config import EXTENDED_INTERFACE_ORDER
from repro.errors import ConfigError, SimulationError
from repro.platform import F1Deployment

DDR_CONFIG = ("sda", "ocl", "bar1", "pcim", "pcis", "ddr4")


def run_record(seed=3, interfaces=DDR_CONFIG):
    acc_factory, host_factory = dram_dma_axi.make()
    deployment = F1Deployment(
        "ddr", acc_factory, VidiConfig.r2(interfaces=interfaces), seed=seed)
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=seed, scale=1.0))
    deployment.run_to_completion(max_cycles=2_000_000)
    return deployment, result


class TestDdr4Config:
    def test_ddr4_is_a_known_interface(self):
        assert "ddr4" in EXTENDED_INTERFACE_ORDER
        config = VidiConfig.r2(interfaces=DDR_CONFIG)
        assert config.monitored[-1] == "ddr4"

    def test_table_grows_to_30_channels(self):
        deployment, result = run_record()
        check(result)
        trace = deployment.recorded_trace()
        assert trace.table.n == 30
        assert trace.table.by_name("ddr4.aw").direction == "out"
        assert trace.table.by_name("ddr4.r").direction == "in"


class TestDdr4RecordReplay:
    def test_app_correct_under_recording(self):
        _, result = run_record()
        check(result)

    def test_ddr_traffic_recorded(self):
        deployment, _ = run_record()
        trace = deployment.recorded_trace()
        ddr_r = trace.table.by_name("ddr4.r").index
        r_ends = sum(1 for p in trace.packets() if (p.ends >> ddr_r) & 1)
        assert r_ends > 0   # read-data beats crossed the monitored bus

    def test_replay_without_dram_controller(self):
        """Replay recreates DRAM responses from the trace alone — the DDR
        controller is not even instantiated."""
        deployment, result = run_record(seed=8)
        check(result)
        trace = deployment.recorded_trace()
        acc_factory, _ = dram_dma_axi.make()
        replay = F1Deployment(
            "ddr_r", acc_factory, VidiConfig.r3(interfaces=DDR_CONFIG),
            replay_trace=trace)
        assert replay.ddr_controller is None
        replay.run_replay(max_cycles=2_000_000)
        report = compare_traces(trace, replay.recorded_trace())
        assert report.clean, report.summary()

    def test_kernel_requires_ddr_when_used(self):
        acc_factory, host_factory = dram_dma_axi.make()
        deployment = F1Deployment(
            "noddr", acc_factory,
            VidiConfig.r2(interfaces=("ocl", "pcim", "pcis")), seed=1)
        result = {}
        deployment.cpu.add_thread(host_factory(result, seed=1, scale=0.5))
        with pytest.raises(SimulationError):
            deployment.run_to_completion(max_cycles=100_000)

    def test_unknown_interface_still_rejected(self):
        with pytest.raises(ConfigError):
            VidiConfig.r2(interfaces=("ddr5",))
