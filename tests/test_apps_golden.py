"""Golden-model unit tests for every application kernel, plus a
record-correctness sweep across all ten benchmarks."""

import hashlib
import random

import pytest

from repro.apps import (
    bnn,
    digit_recognition,
    face_detection,
    mobilenet,
    optical_flow,
    rendering3d,
    sha256,
    spam_filter,
    sssp,
)
from repro.apps.registry import APPS, app_keys, get_app
from repro.core import VidiConfig
from repro.errors import ConfigError
from repro.harness.runner import bench_config, record_run


class TestSha256Golden:
    @pytest.mark.parametrize("message", [
        b"", b"abc", b"a" * 55, b"b" * 56, b"c" * 64, b"d" * 200,
    ])
    def test_matches_hashlib(self, message):
        assert sha256.sha256_digest(message) == \
            hashlib.sha256(message).digest()

    def test_padding_length_multiple_of_block(self):
        for n in range(0, 130, 7):
            assert len(sha256.sha256_pad(b"x" * n)) % 64 == 0


class TestSsspGolden:
    def test_matches_networkx(self):
        import networkx as nx

        rng = random.Random(5)
        edges = sssp.random_graph(rng, 24, 80)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(24))
        for a, b, w in edges:
            if graph.has_edge(a, b):
                w = min(w, graph[a][b]["weight"])
            graph.add_edge(a, b, weight=w)
        lengths = nx.single_source_dijkstra_path_length(graph, 0,
                                                        weight="weight")
        dist = sssp.bellman_ford(24, edges, 0)
        for v in range(24):
            if v in lengths:
                assert dist[v] == lengths[v]
            else:
                assert dist[v] == sssp.INFINITY

    def test_source_distance_zero(self):
        assert sssp.bellman_ford(4, [(0, 1, 3)], 0)[0] == 0

    def test_unreachable_is_infinity(self):
        dist = sssp.bellman_ford(3, [(0, 1, 1)], 0)
        assert dist[2] == sssp.INFINITY


class TestBnnGolden:
    def test_deterministic(self):
        rng = random.Random(1)
        weights = bytes(rng.getrandbits(8)
                        for _ in range(bnn.W1_BYTES + bnn.W2_BYTES))
        x = rng.getrandbits(bnn.IN_BITS)
        assert bnn.bnn_infer(weights, x) == bnn.bnn_infer(weights, x)

    def test_prediction_in_range(self):
        rng = random.Random(2)
        weights = bytes(rng.getrandbits(8)
                        for _ in range(bnn.W1_BYTES + bnn.W2_BYTES))
        for _ in range(10):
            x = rng.getrandbits(bnn.IN_BITS)
            assert 0 <= bnn.bnn_infer(weights, x) < bnn.CLASSES

    def test_all_match_weights_maximises_first_layer(self):
        # A weight row equal to the input gives the maximal neuron response.
        x = random.Random(3).getrandbits(bnn.IN_BITS)
        w1 = x.to_bytes(32, "little") * bnn.HIDDEN
        w2 = bytes(bnn.W2_BYTES)
        prediction = bnn.bnn_infer(w1 + w2, x)
        assert 0 <= prediction < bnn.CLASSES


class TestKnnGolden:
    def test_exact_match_wins(self):
        train = [(0b1010, 3), (0b1111, 7), (0b0000, 1)]
        # K=3 looks at all three, but distance 0 plus two ties: the label of
        # the closest group wins through majority/min-distance ordering.
        assert digit_recognition.knn_classify(train + [(0b1010, 3),
                                                       (0b1010, 3)],
                                              0b1010) == 3

    def test_majority_vote(self):
        train = [(0b0001, 2), (0b0010, 2), (0b0100, 5)]
        assert digit_recognition.knn_classify(train, 0) == 2

    def test_pack_training_record_size(self):
        blob = digit_recognition.pack_training([(1, 2), (3, 4)])
        assert len(blob) == 2 * digit_recognition.DIGIT_BYTES


class TestRasteriserGolden:
    def test_fullscreen_triangle_covers_origin_region(self):
        tri = (0, 0, 10, 63, 0, 10, 0, 63, 10)
        fb = rendering3d.rasterise([tri])
        assert fb[0] != 0                      # origin covered
        assert fb[63 * 64 + 63] == 0           # far corner not covered

    def test_depth_test_keeps_nearer_triangle(self):
        near = (0, 0, 10, 63, 0, 10, 0, 63, 10)
        far = (0, 0, 200, 63, 0, 200, 0, 63, 200)
        fb_near_first = rendering3d.rasterise([near, far])
        fb_far_first = rendering3d.rasterise([far, near])
        assert fb_near_first == fb_far_first   # order-independent
        assert fb_near_first[0] == 255 - 10

    def test_winding_insensitive(self):
        cw = (0, 0, 10, 0, 63, 10, 63, 0, 10)
        ccw = (0, 0, 10, 63, 0, 10, 0, 63, 10)
        assert rendering3d.rasterise([cw]) == rendering3d.rasterise([ccw])


class TestCascadeGolden:
    def test_integral_image_sums(self):
        pixels = bytes([1] * (32 * 32))
        ii = face_detection.integral_image(pixels)
        assert ii[32][32] == 32 * 32
        assert ii[1][1] == 1

    def test_bright_top_blob_detected(self):
        pixels = bytearray(32 * 32)
        for y in range(8):
            for x in range(8):
                pixels[(4 + y) * 32 + 4 + x] = 240 - 25 * y
        bitmap = face_detection.detect_faces(bytes(pixels))
        positions = 32 - 8 + 1
        assert bitmap[4 * positions + 4] == 1

    def test_flat_image_rejected(self):
        bitmap = face_detection.detect_faces(bytes([100] * (32 * 32)))
        assert all(b == 0 for b in bitmap)


class TestSpamFilterGolden:
    def test_separable_data_trains_usable_weights(self):
        rng = random.Random(4)
        samples = []
        for _ in range(200):
            label = rng.randrange(2)
            base = 60 if label else -60
            samples.append(([base + rng.randrange(-20, 21)
                             for _ in range(spam_filter.FEATURES)], label))
        weights = spam_filter.sgd_train(samples)
        # Positive labels correlate with positive features -> positive dot.
        correct = 0
        for features, label in samples[:50]:
            dot = sum(w * f for w, f in zip(weights, features))
            correct += (dot > 0) == bool(label)
        assert correct >= 40

    def test_fixed_point_clipping(self):
        assert spam_filter._clip16(1 << 20) == (1 << 15) - 1
        assert spam_filter._clip16(-(1 << 20)) == -(1 << 15)

    def test_sigmoid_saturation(self):
        assert spam_filter._sigmoid_q(-(10 << 8)) == 0
        assert spam_filter._sigmoid_q(10 << 8) == 1 << 8
        assert spam_filter._sigmoid_q(0) == 1 << 7


class TestOpticalFlowGolden:
    def test_uniform_shift_detected(self):
        # 2-D texture: a pure 1-D gradient makes the structure tensor
        # singular (the aperture problem) and the solver returns zero.
        rng = random.Random(6)
        f0 = bytearray(32 * 32)
        for y in range(32):
            for x in range(32):
                f0[y * 32 + x] = (x * 13 + y * 7 + (x * y) % 5 * 11) % 256
        f1 = bytearray(32 * 32)
        for y in range(32):
            for x in range(32):
                f1[y * 32 + x] = f0[y * 32 + max(0, x - 1)]
        flow = optical_flow.optical_flow(bytes(f0), bytes(f1))
        # Interior pixels should report positive horizontal flow.
        us = []
        for y in range(8, 24):
            for x in range(8, 24):
                u = flow[2 * (y * 32 + x)]
                us.append(u - 256 if u & 0x80 else u)
        assert sum(us) > 0

    def test_static_scene_zero_flow(self):
        frame = bytes(random.Random(7).getrandbits(8) for _ in range(32 * 32))
        flow = optical_flow.optical_flow(frame, frame)
        assert all(b == 0 for b in flow)


class TestMobilenetGolden:
    def test_deterministic_and_in_range(self):
        rng = random.Random(8)
        weights = bytes(rng.getrandbits(8) for _ in range(mobilenet.W_BYTES))
        image = bytes(rng.getrandbits(8) for _ in range(mobilenet.IMG_BYTES))
        a = mobilenet.mobilenet_infer(weights, image)
        assert a == mobilenet.mobilenet_infer(weights, image)
        assert 0 <= a < mobilenet.CLASSES

    def test_zero_weights_pick_class_zero(self):
        image = bytes(mobilenet.IMG_BYTES)
        assert mobilenet.mobilenet_infer(bytes(mobilenet.W_BYTES), image) == 0


class TestRegistry:
    def test_ten_apps_registered(self):
        assert len(APPS) == 10
        assert app_keys()[0] == "dram_dma"

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            get_app("quantum_fft")

    def test_paper_rows_complete(self):
        for spec in APPS.values():
            assert spec.paper.exec_time_s > 0
            assert spec.paper.reduction > 0


@pytest.mark.parametrize("key", list(APPS))
def test_every_app_records_correct_output(key):
    """§5.4 'Recording': R2 must not alter any application's result."""
    spec = get_app(key)
    metrics = record_run(spec, bench_config(VidiConfig.r2), seed=55,
                         scale=0.4)
    assert metrics.trace_bytes > 0
    assert metrics.monitored_transactions > 0
