"""Tests for the profile/audit/coverage CLI subcommands and trace-parser
robustness under random corruption."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.dram_dma import make
from repro.core import TraceFile, VidiConfig
from repro.errors import TraceFormatError
from repro.platform import F1Deployment
from repro.tools import main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    acc_factory, host_factory = make(polling=False)
    deployment = F1Deployment("clian", acc_factory, VidiConfig.r2(), seed=6)
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=6, scale=0.5))
    deployment.run_to_completion()
    assert result["ok"]
    path = tmp_path_factory.mktemp("tr") / "dma.trace"
    deployment.recorded_trace({"app": "dram_dma"}).save(path)
    return str(path)


class TestProfileCommand:
    def test_profile_prints_busiest_channels(self, trace_path, capsys):
        assert main(["profile", trace_path]) == 0
        out = capsys.readouterr().out
        assert "trace profile" in out
        assert "activity timeline" in out
        assert "pcis.w" in out

    def test_bucket_option(self, trace_path, capsys):
        assert main(["profile", trace_path, "--buckets", "5"]) == 0
        out = capsys.readouterr().out
        assert "t04" in out and "t05" not in out


class TestAuditCommand:
    def test_permissive_policy_exits_zero(self, trace_path, capsys):
        assert main(["audit", trace_path,
                     "--allow", "pcim:rw:0x0:0x400000"]) == 0
        assert "no out-of-policy" in capsys.readouterr().out

    def test_restrictive_policy_exits_one(self, trace_path, capsys):
        assert main(["audit", trace_path,
                     "--allow", "pcim:write:0x0:0x40"]) == 1
        assert "out-of-policy" in capsys.readouterr().out

    def test_bad_window_syntax(self, trace_path, capsys):
        assert main(["audit", trace_path, "--allow", "nonsense"]) == 2


class TestCoverageCommand:
    def test_coverage_over_traces(self, trace_path, capsys):
        assert main(["coverage", trace_path, trace_path]) == 0
        out = capsys.readouterr().out
        assert "ordering coverage" in out
        assert "+0 ordering observation(s)" in out   # second pass adds nothing


class TestTraceParserRobustness:
    """Random corruption must yield TraceFormatError, never crashes."""

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_corrupted_container_fails_cleanly(self, data):
        from repro.core.events import ChannelInfo, ChannelTable
        from repro.core.packets import CyclePacket

        table = ChannelTable([
            ChannelInfo(index=0, name="a", direction="in", content_bytes=2,
                        payload_bits=16),
            ChannelInfo(index=1, name="b", direction="out", content_bytes=1,
                        payload_bits=8),
        ])
        trace = TraceFile.from_packets(
            table,
            [CyclePacket(starts=1, ends=0b11, contents={0: b"\x01\x02"},
                         validation={1: b"\x03"})] * 3)
        blob = bytearray(trace.to_bytes())
        n_flips = data.draw(st.integers(min_value=1, max_value=6))
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        for _ in range(n_flips):
            position = rng.randrange(len(blob))
            blob[position] ^= 1 << rng.randrange(8)
        try:
            parsed = TraceFile.from_bytes(bytes(blob))
            parsed.packets()          # decoding must also be crash-free
        except (TraceFormatError, KeyError, ValueError):
            pass   # clean, typed rejection is the accepted outcome

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_garbage_input_rejected(self, blob):
        with pytest.raises((TraceFormatError, ValueError, KeyError,
                            IndexError, OverflowError)):
            TraceFile.from_bytes(blob)
            raise ValueError("parsed garbage")   # force failure if accepted
