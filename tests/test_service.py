"""Trace-service tests: ingest, job queue, results store, crash recovery.

Covers the fleet-scale daemon (ROADMAP item 2's deployability follow-on)
at three levels:

* unit — the `FrameRing` retention policy and `FrameStreamParser`
  chunk reassembly shared between the flight recorder and daemon-side
  ingest; the CRC-framed `ResultsStore` (including torn-tail
  tolerance); `IngestManager` journal-before-parse semantics and
  tenant-name hygiene; `JobQueue` priority order and drain;
* differential — a record job submitted through a live daemon must
  produce byte-for-byte the same trace as the CLI, and a campaign job
  the same trial verdicts as an in-process `run_campaign`;
* crash — SIGKILL a daemon subprocess mid-ingest with concurrent
  tenant streams (one cut mid-frame) and check every tenant's journal
  still salvages to a valid anchor-led window.

The warm pool's graceful-drain contract (no leaked worker processes
after `shutdown_pool(wait=True)`) is pinned here too, since the daemon
relies on it for clean exit.
"""

import json
import os
import signal
import subprocess
import sys
import time
import zlib
from pathlib import Path

import pytest

from repro.core.trace_file import (FRAME_ANCHOR, FRAME_END, FRAME_RUN,
                                   build_v3_container, encode_end_frame,
                                   encode_frame)
from repro.core.trace_ring import FrameRing, FrameStreamParser
from repro.errors import TraceFormatError
from repro.harness import worker_pool
from repro.service.ingest import IngestManager
from repro.service.queue import JobQueue
from repro.service.results import ResultsStore, record_bench

_HDR = 9   # v3 frame header: kind + len + crc32


def _mk_run(n: int) -> bytes:
    return bytes((n + i) % 251 for i in range(40))


# ----------------------------------------------------------------------
# FrameRing — the shared retention policy
# ----------------------------------------------------------------------

class TestFrameRing:
    def test_evicts_whole_epochs_from_the_front(self):
        ring = FrameRing(retain_bytes=3 * (_HDR + 40) + 2 * _HDR)
        for epoch in range(4):
            ring.append(FRAME_ANCHOR, b"")
            ring.append(FRAME_RUN, _mk_run(epoch))
        frames = ring.frame_list()
        # Whatever survives must lead with an ANCHOR (salvageable window).
        assert frames[0][0] == FRAME_ANCHOR
        assert ring.evicted_epochs > 0
        # Eviction removed anchor+runs together, never a bare run prefix.
        kinds = [k for k, _ in frames]
        assert kinds.count(FRAME_ANCHOR) == ring.retained_anchors

    def test_last_epoch_is_never_evicted(self):
        ring = FrameRing(retain_bytes=1)    # absurdly small budget
        ring.append(FRAME_ANCHOR, b"")
        for i in range(5):
            ring.append(FRAME_RUN, _mk_run(i))
        # Over budget, but with a single anchor there is nothing safe to
        # drop: the ring overshoots instead of destroying the only window.
        assert ring.retained_anchors == 1
        assert len(ring.frame_list()) == 6

    def test_observer_sees_every_frame_before_eviction(self):
        seen = []
        ring = FrameRing(retain_bytes=_HDR + 40,
                         observer=lambda k, p: seen.append((k, p)))
        appended = []
        for epoch in range(3):
            for frame in ((FRAME_ANCHOR, b""), (FRAME_RUN, _mk_run(epoch))):
                ring.append(*frame)
                appended.append(frame)
        # Local retention evicted, but the observer saw the full stream.
        assert ring.evicted_frames > 0
        assert seen == appended

    def test_frame_stream_round_trips_through_parser(self):
        ring = FrameRing(retain_bytes=1 << 20)
        ring.append(FRAME_ANCHOR, b"")
        ring.append(FRAME_RUN, _mk_run(1))
        parser = FrameStreamParser()
        frames = parser.feed(ring.frame_stream(end=True))
        assert [k for k, _ in frames] == [FRAME_ANCHOR, FRAME_RUN, FRAME_END]
        assert parser.end_seen


class TestFrameStreamParser:
    def test_reassembles_across_arbitrary_chunk_boundaries(self):
        stream = (encode_frame(FRAME_ANCHOR, b"") +
                  encode_frame(FRAME_RUN, _mk_run(0)) +
                  encode_end_frame())
        for step in (1, 3, 7, len(stream)):
            parser = FrameStreamParser()
            frames = []
            for i in range(0, len(stream), step):
                frames.extend(parser.feed(stream[i:i + step]))
            assert [k for k, _ in frames] == [FRAME_ANCHOR, FRAME_RUN,
                                              FRAME_END]
            assert parser.pending_bytes == 0
            assert parser.bytes_consumed == len(stream)

    def test_crc_damage_raises(self):
        frame = bytearray(encode_frame(FRAME_RUN, _mk_run(0)))
        frame[-1] ^= 0xFF
        with pytest.raises(TraceFormatError, match="CRC32"):
            FrameStreamParser().feed(bytes(frame))

    def test_unknown_kind_raises(self):
        with pytest.raises(TraceFormatError, match="unknown frame kind"):
            FrameStreamParser().feed(b"\x7f" + b"\x00" * 8)


# ----------------------------------------------------------------------
# ResultsStore — append-only, CRC-framed, torn-tail tolerant
# ----------------------------------------------------------------------

class TestResultsStore:
    def test_append_and_filtered_query(self, tmp_path):
        store = ResultsStore(tmp_path / "r.vrs")
        store.append("job", "record", {"id": "job-1"}, t=1.0)
        store.append("job", "replay", {"id": "job-2"}, t=2.0)
        store.append("bench", "kernel", {"speedup": 3.0}, t=3.0)
        assert len(store.records()) == 3
        assert [r["payload"]["id"] for r in store.records(kind="job")] == \
            ["job-1", "job-2"]
        assert store.records(kind="job", limit=1)[0]["payload"]["id"] == \
            "job-2"
        assert store.bench_history("kernel")[0]["payload"]["speedup"] == 3.0
        # A second handle over the same file sees everything (persistence).
        assert len(ResultsStore(store.path).records()) == 3

    def test_torn_tail_is_skipped_not_propagated(self, tmp_path):
        store = ResultsStore(tmp_path / "r.vrs")
        for i in range(3):
            store.append("job", "record", {"i": i}, t=float(i))
        blob = store.path.read_bytes()
        # Tear the file mid-way through the last record (daemon killed
        # mid-append): the scan must serve the intact prefix.
        store.path.write_bytes(blob[:len(blob) - 5])
        fresh = ResultsStore(store.path)
        assert [r["payload"]["i"] for r in fresh.records()] == [0, 1]
        assert fresh.skipped_corrupt == 1
        # And appends still land after the damage is truncated away.

    def test_flipped_byte_stops_scan_at_damage(self, tmp_path):
        store = ResultsStore(tmp_path / "r.vrs")
        store.append("job", "record", {"i": 0}, t=0.0)
        store.append("job", "record", {"i": 1}, t=1.0)
        blob = bytearray(store.path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        store.path.write_bytes(bytes(blob))
        records = ResultsStore(store.path).records()
        assert all(zlib.crc32(b"") == 0 for _ in [0])   # sanity anchor
        assert len(records) <= 1   # damage never yields garbage records

    def test_record_bench_is_best_effort(self, tmp_path):
        ok = record_bench("kernel", {"speedup": 2.0}, tmp_path / "h.vrs")
        assert ok
        assert ResultsStore(tmp_path / "h.vrs").bench_history("kernel")
        # An unwritable path reports failure instead of raising.
        assert record_bench("kernel", {}, "/proc/nope/h.vrs") is False


# ----------------------------------------------------------------------
# IngestManager — journals first, parses second
# ----------------------------------------------------------------------

class TestIngestManager:
    def _stream(self):
        return (encode_frame(FRAME_ANCHOR, b"") +
                encode_frame(FRAME_RUN, _mk_run(0)))

    def test_tenant_names_are_path_safe(self, tmp_path):
        ingest = IngestManager(tmp_path)
        for bad in ("../evil", "a/b", "", "x" * 65, "a\x00b"):
            with pytest.raises(ValueError):
                ingest.begin(bad, b"")
        assert ingest.begin("tenant-0.a_b", b"")["tenant"] == "tenant-0.a_b"

    def test_unknown_tenant_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="no begin"):
            IngestManager(tmp_path).frames("ghost", b"")

    def test_journal_gets_damaged_bytes_before_parser_rejects(self, tmp_path):
        ingest = IngestManager(tmp_path)
        ingest.begin("t", b"PFX!")
        bad = bytearray(self._stream())
        bad[-1] ^= 0xFF
        with pytest.raises(TraceFormatError):
            ingest.frames("t", bytes(bad))
        # The evidence is on disk even though the parser refused it.
        journal = Path(ingest.journal_path("t"))
        assert journal.read_bytes() == b"PFX!" + bytes(bad)
        assert ingest.status()["t"]["error"] is not None

    def test_end_appends_missing_end_frame(self, tmp_path):
        ingest = IngestManager(tmp_path)
        ingest.begin("t", b"")
        ingest.frames("t", self._stream())
        info = ingest.end("t")
        journal = Path(info["journal"]).read_bytes()
        assert journal == self._stream() + encode_end_frame()
        # A clean close with END already streamed appends nothing extra.
        ingest.begin("u", b"")
        ingest.frames("u", self._stream() + encode_end_frame())
        ingest.end("u")
        assert Path(ingest.journal_path("u")).read_bytes() == \
            self._stream() + encode_end_frame()


# ----------------------------------------------------------------------
# Warm pool drain + job queue scheduling
# ----------------------------------------------------------------------

def _pids_alive(pids):
    alive = []
    for pid in pids:
        try:
            os.kill(pid, 0)
            alive.append(pid)
        except OSError:
            pass
    return alive


def test_warm_pool_graceful_shutdown_leaks_no_workers(tmp_path):
    worker_pool.shutdown_pool()
    try:
        pool = worker_pool.get_pool(2)
        # Touch both slots so both worker processes actually exist.
        futures = [pool.submit(os.getpid, affinity=("slot", i))
                   for i in range(4)]
        for fut in futures:
            fut.result(timeout=120)
        pids = pool.worker_pids()
        assert pids, "warm pool reported no live workers"
    finally:
        worker_pool.shutdown_pool(wait=True)
    deadline = time.monotonic() + 10.0
    while _pids_alive(pids) and time.monotonic() < deadline:
        time.sleep(0.05)
    assert _pids_alive(pids) == [], (
        f"worker processes survived graceful shutdown: {_pids_alive(pids)}")


@pytest.fixture
def small_trace(tmp_path):
    """A tiny valid trace file for cheap salvage jobs."""
    from repro.apps.registry import get_app
    from repro.core import VidiConfig
    from repro.harness.runner import bench_config, record_run

    metrics = record_run(get_app("sha256"), bench_config(VidiConfig.r2),
                         seed=1)
    path = tmp_path / "small.trace"
    path.write_bytes(metrics.result["trace"].to_bytes())
    return path


class TestJobQueue:
    def test_priority_order_and_results_persistence(self, tmp_path,
                                                    small_trace):
        worker_pool.shutdown_pool()
        store = ResultsStore(tmp_path / "results.vrs")
        queue = JobQueue(jobs=1, results=store)
        try:
            params = {"trace_path": str(small_trace)}
            # Let the blocker occupy the single slot (the worker cold
            # start keeps it busy for a while), then queue the rest:
            # with the slot taken, their order is decided purely by the
            # heap, not by submission timing.
            blocker = queue.submit("salvage", params)
            deadline = time.monotonic() + 60.0
            while queue.get(blocker).state == "queued":
                assert time.monotonic() < deadline, "blocker never started"
                time.sleep(0.005)
            low = queue.submit("salvage", params, priority=30)
            mid = queue.submit("salvage", params, priority=10)
            high = queue.submit("salvage", params, priority=1)
            assert queue.drain(timeout=300.0)
            for job_id in (blocker, low, mid, high):
                job = queue.get(job_id)
                assert job.state == "done", job.error
                assert job.result["packets"] > 0
            # The store append happens just after the finish notification;
            # poll briefly for the last record.
            deadline = time.monotonic() + 10.0
            while (len(store.records(kind="job")) < 4
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            finished = [r["payload"]["id"] for r in store.records(kind="job")]
            assert finished == [blocker, high, mid, low], (
                "queue did not honour priorities (lower number first)")
        finally:
            queue.stop(drain=True, timeout=60.0)
            worker_pool.shutdown_pool()

    def test_failed_job_reports_error_and_queue_survives(self, tmp_path,
                                                         small_trace):
        worker_pool.shutdown_pool()
        queue = JobQueue(jobs=1)
        try:
            bad = queue.submit("replay", {"app": "sha256",
                                          "trace_path": "/nonexistent"})
            job = queue.wait(bad, timeout=300.0)
            assert job.state == "failed"
            assert job.error
            # The scheduler is still alive after a failure.
            ok = queue.wait(queue.submit(
                "salvage", {"trace_path": str(small_trace)}), timeout=300.0)
            assert ok.state == "done"
            assert queue.status()["failed"] == 1
        finally:
            queue.stop(drain=True, timeout=60.0)
            worker_pool.shutdown_pool()

    def test_rejects_unknown_kind_and_submit_after_stop(self, tmp_path):
        queue = JobQueue(jobs=1)
        with pytest.raises(ValueError, match="unknown job kind"):
            queue.submit("mine-bitcoin", {})
        queue.stop(drain=True, timeout=60.0)
        with pytest.raises(RuntimeError):
            queue.submit("salvage", {})


# ----------------------------------------------------------------------
# Daemon differential: jobs through the daemon == the CLI, bit for bit
# ----------------------------------------------------------------------

def _cli_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def test_daemon_jobs_match_cli_bit_for_bit(tmp_path):
    import hashlib

    from repro.faults import run_campaign
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.server import TraceService

    worker_pool.shutdown_pool()
    service = TraceService(tmp_path / "svc", jobs=2).run_in_thread()
    try:
        client = ServiceClient(data_dir=service.data_dir)
        assert client.health()["ok"]

        # Record: daemon job blob == the CLI's output file, byte for byte.
        cli_out = tmp_path / "cli.trace"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.harness", "record", "sha256",
             "-o", str(cli_out), "--seed", "7"],
            env=_cli_env(), capture_output=True)
        assert proc.returncode == 0, proc.stderr.decode()
        daemon_out = tmp_path / "daemon.trace"
        detail = client.wait(client.submit(
            "record", {"app": "sha256", "seed": 7,
                       "save_to": str(daemon_out)}))
        cli_sha = hashlib.sha256(cli_out.read_bytes()).hexdigest()
        assert detail["result"]["trace_sha256"] == cli_sha
        assert daemon_out.read_bytes() == cli_out.read_bytes()

        # Campaign: daemon trial verdicts == in-process run_campaign.
        params = {"n_faults": 3, "seed": 2, "crash_app": "sha256"}
        report = run_campaign(app="sha256", n_faults=3, seed=2,
                              crash_app="sha256", warm_pool=False)
        expected = [[t.index, t.kind, t.seed, t.outcome, t.detail]
                    for t in report.trials]
        detail = client.wait(client.submit("campaign", params))
        assert detail["result"]["trials"] == expected
        assert detail["result"]["silent_accepts"] == \
            len(report.silent_accepts)

        # Both verdicts landed in the persistent results store.
        kinds = {r["name"] for r in client.results(kind="job")}
        assert {"record", "campaign"} <= kinds

        # Unknown job kinds are rejected at the HTTP boundary.
        with pytest.raises(ServiceError, match="unknown job kind"):
            client.submit("mine-bitcoin", {})
    finally:
        service.shutdown()
        worker_pool.shutdown_pool()


# ----------------------------------------------------------------------
# Crash recovery: SIGKILL the daemon mid-ingest, salvage every journal
# ----------------------------------------------------------------------

def _flight_frames():
    """One real flight recording as (container prefix, encoded frames)."""
    from repro.apps.registry import get_app
    from repro.core import VidiConfig
    from repro.harness.runner import bench_config, record_run

    captured = {"frames": []}

    def hook(deployment):
        shim = deployment.shim
        captured["prefix"] = build_v3_container(
            shim.table, shim.encoder.record_output_contents, {}, b"",
            shim.config.flight_dedup_slots)
        shim.store.set_observer(
            lambda kind, payload: captured["frames"].append(
                encode_frame(kind, payload)))

    config = bench_config(VidiConfig.r2, flight_recorder=True,
                          flight_retain_words=512, flight_anchor_stride=512)
    record_run(get_app("dram_dma"), config, seed=5, before_run=hook)
    assert len(captured["frames"]) >= 3, "recording emitted too few frames"
    return captured["prefix"], captured["frames"]


def _wait_for_daemon(data_dir, proc, timeout=60.0):
    from repro.service.client import ServiceClient
    from repro.service.server import SERVICE_FILENAME

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        assert proc.poll() is None, "daemon exited before coming up"
        if (data_dir / SERVICE_FILENAME).exists():
            try:
                client = ServiceClient(data_dir=data_dir)
                client.health()
                return client
            except Exception:
                pass
        time.sleep(0.1)
    raise AssertionError("daemon did not come up in time")


def test_concurrent_ingest_survives_daemon_sigkill(tmp_path):
    from repro.core import TraceFile

    prefix, frames = _flight_frames()
    stream = b"".join(frames)

    data_dir = tmp_path / "svc"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.tools", "serve",
         "--data-dir", str(data_dir), "--jobs", "1"],
        env=_cli_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    try:
        client = _wait_for_daemon(data_dir, proc)

        # Two concurrent tenants, chunks interleaved mid-frame: tenant-a
        # is cut inside a frame (recorder still mid-stream at the kill),
        # tenant-b has received its whole stream but no clean close.
        client.ingest_begin("tenant-a", prefix)
        client.ingest_begin("tenant-b", prefix)
        step = max(1, len(stream) // 7)
        offsets = list(range(0, len(stream), step))
        for i, off in enumerate(offsets):
            client.ingest_frames("tenant-b", stream[off:off + step])
            if i < len(offsets) - 2:
                client.ingest_frames("tenant-a", stream[off:off + step])
        # tenant-a's last chunk stops partway through a frame header.
        torn_at = offsets[-2] + 4
        client.ingest_frames("tenant-a", stream[offsets[-2]:torn_at])

        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    # Every tenant's journal must salvage to a valid anchor-led window.
    journals = {p.stem: p for p in (data_dir / "tenants").glob("*.vtrc3")}
    assert set(journals) == {"tenant-a", "tenant-b"}

    complete = TraceFile.from_bytes(prefix + stream + encode_end_frame())
    for tenant, path in journals.items():
        salvaged = TraceFile.load(path, salvage=True)
        assert salvaged.packet_count > 0, f"{tenant}: empty salvage window"
        assert salvaged.packet_count <= complete.packet_count
    # tenant-b received every frame: nothing may be lost to the kill.
    full = TraceFile.load(journals["tenant-b"], salvage=True)
    assert full.packet_count == complete.packet_count
    assert bytes(full.body) == bytes(complete.body)
