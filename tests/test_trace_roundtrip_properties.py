"""Property tests: the zero-copy trace datapath against reference encodings.

Random channel tables, contents and validation payloads, checked three ways:

* the staged ``serialize_into`` path is byte-identical to the seed
  algorithm (bitvectors + binary-reduction-tree ``pack_contents`` joins);
* the memoryview deserialize path round-trips every packet exactly;
* the :class:`~repro.core.trace_file.TraceIndex` agrees with a sequential
  scan, its slices are valid standalone bodies, and the one-pass compact
  feeds match the legacy element-feed compilation.
"""

import random

import pytest

from repro.core.contents_tree import pack_contents
from repro.core.decoder import TraceDecoder
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.packets import (
    CyclePacket,
    deserialize_packets,
    serialize_packets,
)
from repro.core.replayer import compile_elements
from repro.core.trace_file import TraceFile, TraceIndex


def random_table(rng):
    n = rng.randint(1, 12)
    infos = [
        ChannelInfo(
            index=i,
            name=f"iface.ch{i}",
            direction=rng.choice(("in", "out")),
            content_bytes=rng.randint(1, 9),
            payload_bits=rng.randint(1, 64),
        )
        for i in range(n)
    ]
    return ChannelTable(infos)


def random_bytes(rng, length):
    return bytes(rng.getrandbits(8) for _ in range(length))


def random_packet(rng, table, with_validation):
    """A non-empty cycle packet respecting the table's directions."""
    while True:
        starts = 0
        contents = {}
        for i in table.input_indices:
            if rng.random() < 0.4:
                starts |= 1 << i
                contents[i] = random_bytes(rng, table[i].content_bytes)
        ends = 0
        validation = {}
        for i in range(table.n):
            if rng.random() < 0.4:
                ends |= 1 << i
                if with_validation and not table.is_input(i):
                    validation[i] = random_bytes(rng, table[i].content_bytes)
        if starts or ends:
            return CyclePacket(starts=starts, ends=ends, contents=contents,
                               validation=validation)


def random_trace(rng, with_validation):
    table = random_table(rng)
    packets = [random_packet(rng, table, with_validation)
               for _ in range(rng.randint(1, 40))]
    body = serialize_packets(packets, table, with_validation)
    return table, packets, body


def reference_serialize(packet, table, with_validation):
    """The seed encoder's algorithm: bitvectors + reduction-tree joins."""
    out = packet.starts.to_bytes(table.bitvec_bytes, "little")
    out += packet.ends.to_bytes(table.bitvec_bytes, "little")
    out += pack_contents(packet.contents.items())
    if with_validation:
        out += pack_contents(packet.validation.items())
    return out


SEEDS = list(range(8))


class TestSerializationEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("with_validation", [True, False])
    def test_staged_path_matches_reference(self, seed, with_validation):
        rng = random.Random(seed)
        table, packets, body = random_trace(rng, with_validation)
        reference = b"".join(
            reference_serialize(p, table, with_validation) for p in packets)
        assert body == reference

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serialize_into_appends(self, seed):
        """serialize_into extends the caller's buffer without clearing it."""
        rng = random.Random(seed)
        table, packets, _body = random_trace(rng, True)
        stage = bytearray(b"prefix")
        packets[0].serialize_into(stage, table, True)
        assert bytes(stage) == b"prefix" + packets[0].serialize(table, True)


class TestDeserializationRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("with_validation", [True, False])
    def test_round_trip(self, seed, with_validation):
        rng = random.Random(seed)
        table, packets, body = random_trace(rng, with_validation)
        decoded = deserialize_packets(body, table, with_validation)
        assert decoded == packets

    @pytest.mark.parametrize("seed", SEEDS)
    def test_memoryview_slice_of_larger_buffer(self, seed):
        """Decoding must not assume the body starts at the buffer origin."""
        rng = random.Random(seed)
        table, packets, body = random_trace(rng, True)
        padded = memoryview(b"\xAA" * 7 + body + b"\xBB" * 3)
        view = padded[7:7 + len(body)]
        offset = 0
        decoded = []
        while offset < len(view):
            packet, offset = CyclePacket.deserialize(view, offset, table, True)
            decoded.append(packet)
        assert decoded == packets

    @pytest.mark.parametrize("seed", SEEDS)
    def test_iter_packets_matches_packets(self, seed):
        rng = random.Random(seed)
        table, packets, body = random_trace(rng, True)
        trace = TraceFile(table=table, body=body, with_validation=True)
        assert list(trace.iter_packets()) == trace.packets() == packets


class TestTraceIndex:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("with_validation", [True, False])
    def test_offsets_match_sequential_scan(self, seed, with_validation):
        rng = random.Random(seed)
        table, packets, body = random_trace(rng, with_validation)
        index = TraceIndex(body, table, with_validation)
        assert len(index) == len(packets)
        view = memoryview(body)
        offset = 0
        for ordinal in range(len(packets)):
            assert index.offset_of(ordinal) == offset
            _packet, offset = CyclePacket.deserialize(
                view, offset, table, with_validation)
        assert index.offset_of(len(packets)) == len(body) == index.end

    @pytest.mark.parametrize("seed", SEEDS)
    def test_packet_at_random_ordinals(self, seed):
        rng = random.Random(seed)
        table, packets, body = random_trace(rng, True)
        index = TraceIndex(body, table, True)
        for _ in range(10):
            ordinal = rng.randrange(len(packets))
            assert index.packet_at(ordinal) == packets[ordinal]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_slices_are_standalone_bodies(self, seed):
        rng = random.Random(seed)
        table, packets, body = random_trace(rng, True)
        index = TraceIndex(body, table, True)
        n = len(packets)
        cuts = sorted({0, n, rng.randint(0, n), rng.randint(0, n)})
        assert b"".join(index.slice(a, b)
                        for a, b in zip(cuts, cuts[1:])) == body
        for a, b in zip(cuts, cuts[1:]):
            assert deserialize_packets(index.slice(a, b), table, True) \
                == packets[a:b]


class TestCompactFeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("with_validation", [True, False])
    def test_one_pass_feeds_match_legacy_compilation(self, seed,
                                                     with_validation):
        rng = random.Random(seed)
        table, packets, body = random_trace(rng, with_validation)
        decoder = TraceDecoder(table, with_validation=with_validation)
        feeds = decoder.compact_feeds(body)
        assert [feed.index for feed in feeds] == list(range(table.n))
        for i, feed in enumerate(feeds):
            direction = table[i].direction
            assert feed.direction == direction
            legacy = decoder.channel_feed(packets, i)
            assert feed.actions == compile_elements(legacy, direction, table.n)
