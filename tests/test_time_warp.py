"""Tests for quiescent-gap time warping: kernel semantics and replay equivalence.

The kernel half exercises the warp machinery directly with small modules
declaring their wake-up cycles; the application half replays recorded traces
with the warp on and off and checks the two executions are indistinguishable
— same cycle counts, same validation trace bytes, same divergence verdicts,
and identical cycle-by-cycle signal histories.
"""

import pytest

from repro.apps.registry import get_app
from repro.core import VidiConfig, compare_traces
from repro.errors import WatchdogTimeout
from repro.harness.runner import (
    bench_config,
    record_run,
    replay_run,
    trace_interfaces,
)
from repro.platform.shell import F1Deployment
from repro.sim import Module, Simulator


class Ticker(Module):
    """Fires every ``period`` cycles and declares its next wake-up."""

    has_comb = False

    def __init__(self, name="ticker", period=10):
        super().__init__(name)
        self.period = period
        self.out = self.signal("out", width=32)
        self._countdown = period
        self.fires = 0
        self.seq_calls = 0
        self.warp_gaps = []

    def seq(self):
        self.seq_calls += 1
        self._countdown -= 1
        if self._countdown == 0:
            self.fires += 1
            self.out.set_next(self.fires)
            self._countdown = self.period

    def next_wake(self, cycle):
        # seq() decrements once per executed cycle, so the fire lands
        # ``countdown - 1`` cycles from now.
        return cycle + self._countdown - 1

    def on_warp(self, gap):
        self.warp_gaps.append(gap)
        self._countdown -= gap


class Opaque(Module):
    """A sequential module without a next_wake override."""

    has_comb = False

    def __init__(self, name="opaque"):
        super().__init__(name)
        self.count = self.signal("count", width=16)

    def seq(self):
        self.count.set_next(self.count.value + 1)


def _ticker_sim(periods, time_warp=None):
    sim = Simulator(time_warp=time_warp)
    tickers = [Ticker(f"t{i}", period=p) for i, p in enumerate(periods)]
    for ticker in tickers:
        sim.add(ticker)
    return sim, tickers


class TestWarpKernel:
    def test_single_ticker_skips_quiescent_gaps(self):
        sim, (ticker,) = _ticker_sim([100])
        sim.run(1000)
        assert sim.cycle == 1000
        assert ticker.fires == 10
        assert ticker.out.value == 10
        assert sim.warped_cycles >= 900
        assert sim.warp_jumps == 10

    def test_equivalent_to_per_cycle_execution(self):
        periods = [5, 7, 13]
        warp_sim, warp_tickers = _ticker_sim(periods, time_warp=True)
        ref_sim, ref_tickers = _ticker_sim(periods, time_warp=False)
        warp_sim.run(500)
        ref_sim.run(500)
        assert ref_sim.warped_cycles == 0
        for warped, ref in zip(warp_tickers, ref_tickers):
            assert warped.fires == ref.fires
            assert warped.out.value == ref.out.value
        # Every skipped cycle was accounted for via on_warp.
        for ticker in warp_tickers:
            assert ticker.seq_calls + sum(ticker.warp_gaps) == 500

    def test_run_boundary_never_overshot(self):
        sim, (ticker,) = _ticker_sim([1000])
        sim.run(50)
        assert sim.cycle == 50
        assert ticker.fires == 0
        sim.run(950)
        assert sim.cycle == 1000
        assert ticker.fires == 1

    def test_run_until_elapsed_matches_per_cycle(self):
        warp_sim, (warp_ticker,) = _ticker_sim([40], time_warp=True)
        ref_sim, (ref_ticker,) = _ticker_sim([40], time_warp=False)
        warp_elapsed = warp_sim.run_until(
            lambda: warp_ticker.fires == 3, max_cycles=10_000)
        ref_elapsed = ref_sim.run_until(
            lambda: ref_ticker.fires == 3, max_cycles=10_000)
        assert warp_elapsed == ref_elapsed
        assert warp_sim.warped_cycles > 0

    def test_watchdog_timeout_preserved(self):
        sim, (ticker,) = _ticker_sim([10_000])
        with pytest.raises(WatchdogTimeout):
            sim.run_until(lambda: ticker.fires == 5, max_cycles=500)
        assert sim.cycle == 500

    def test_opaque_seq_module_disables_warp(self):
        sim = Simulator(time_warp=True)
        sim.add(Ticker(period=50))
        sim.add(Opaque())
        sim.run(300)
        assert sim.warped_cycles == 0
        assert sim.warp_jumps == 0

    def test_cycle_hooks_disable_warp(self):
        sim, (ticker,) = _ticker_sim([50])
        seen = []
        sim.add_cycle_hook(seen.append)
        sim.run(200)
        assert sim.warped_cycles == 0
        assert len(seen) == 200         # hooks observe every cycle
        assert ticker.fires == 4

    def test_pure_reactive_modules_never_warp(self):
        """All-None hints mean nothing is scheduled — no warp target."""

        class Reactive(Ticker):
            def next_wake(self, cycle):
                return None

        sim = Simulator(time_warp=True)
        ticker = Reactive(period=50)
        sim.add(ticker)
        sim.run(200)
        assert sim.warped_cycles == 0
        assert ticker.fires == 4


class TestWarpSwitch:
    def test_disabled_by_argument(self):
        sim, (ticker,) = _ticker_sim([100], time_warp=False)
        sim.run(500)
        assert sim.warped_cycles == 0
        assert ticker.fires == 5

    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TIMEWARP", raising=False)
        assert Simulator().time_warp is True

    def test_environment_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIMEWARP", "0")
        assert Simulator().time_warp is False

    def test_argument_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIMEWARP", "0")
        assert Simulator(time_warp=True).time_warp is True


# ----------------------------------------------------------------------
# replay equivalence on real applications
# ----------------------------------------------------------------------

EQUIVALENCE_APPS = ("sha256", "dram_dma", "digit_recognition")


def _record(app, seed=11):
    spec = get_app(app)
    metrics = record_run(spec, bench_config(VidiConfig.r2), seed=seed)
    return spec, metrics.result["trace"]


def _replay_history(spec, trace, time_warp, max_cycles=500_000):
    """Replay stepwise, reconstructing the dense per-cycle signal history.

    During a warp nothing executes, so every bridged cycle holds the values
    from before the jump; expanding the gaps that way must reproduce the
    per-cycle run's history exactly.
    """
    acc_factory, _host = spec.make()
    config = VidiConfig.r3(interfaces=trace_interfaces(trace))
    deployment = F1Deployment(f"hist_{spec.key}_{int(bool(time_warp))}",
                              acc_factory, config, replay_trace=trace,
                              time_warp=time_warp)
    signals = [
        signal
        for interface in deployment.app_interfaces.values()
        for channel in interface.channels.values()
        for signal in (channel.valid, channel.ready, channel.payload)
    ]
    deployment.sim.elaborate()
    history = []
    last = tuple(s.value for s in signals)
    while not deployment.shim.replay_done:
        start = deployment.sim.cycle
        deployment.sim.step()
        values = tuple(s.value for s in signals)
        history.extend([last] * (deployment.sim.cycle - start - 1))
        history.append(values)
        last = values
        assert deployment.sim.cycle < max_cycles, "replay did not converge"
    return history


class TestReplayEquivalence:
    @pytest.mark.parametrize("app", EQUIVALENCE_APPS)
    def test_cycles_validation_and_verdicts_identical(self, app):
        spec, trace = _record(app)
        percycle = replay_run(spec, trace, time_warp=False)
        warped = replay_run(spec, trace, time_warp=True)
        assert warped.cycles == percycle.cycles
        assert bytes(warped.result["validation"].body) == \
            bytes(percycle.result["validation"].body)
        ref_report = compare_traces(trace, percycle.result["validation"])
        warp_report = compare_traces(trace, warped.result["validation"])
        assert [(d.kind, d.channel, d.occurrence, d.detail)
                for d in warp_report.divergences] == \
            [(d.kind, d.channel, d.occurrence, d.detail)
             for d in ref_report.divergences]
        assert percycle.result["deployment"].sim.warped_cycles == 0

    @pytest.mark.parametrize("app", EQUIVALENCE_APPS)
    def test_signal_histories_identical(self, app):
        spec, trace = _record(app)
        reference = _replay_history(spec, trace, time_warp=False)
        warped = _replay_history(spec, trace, time_warp=True)
        assert warped == reference

    def test_sparse_trace_actually_warps(self):
        """sha256's replay is mostly quiescent compute gaps — the warp must
        bridge a large share of them (the perf claim, pinned loosely)."""
        spec, trace = _record("sha256")
        warped = replay_run(spec, trace, time_warp=True)
        sim = warped.result["deployment"].sim
        assert sim.warp_jumps > 0
        assert sim.warped_cycles / warped.cycles > 0.5
