"""Direct unit tests for the trace encoder's reservation ledger."""

import pytest

from repro.core.encoder import TraceEncoder
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.packets import deserialize_packets
from repro.core.store import TraceStore
from repro.errors import SimulationError
from repro.sim import Simulator


def make_encoder(staging=1024, record_output_contents=True):
    sim = Simulator()
    table = ChannelTable([
        ChannelInfo(index=0, name="in0", direction="in", content_bytes=4,
                    payload_bits=32),
        ChannelInfo(index=1, name="out0", direction="out", content_bytes=8,
                    payload_bits=64),
    ])
    store = TraceStore("store", staging_bytes=staging,
                       bandwidth_bytes_per_cycle=1000.0)
    encoder = TraceEncoder("enc", table, store,
                           record_output_contents=record_output_contents)
    sim.add(encoder)
    sim.add(store)
    return sim, encoder, store, table


class TestGrant:
    def test_granted_when_plenty_of_room(self):
        _, encoder, _, _ = make_encoder()
        assert encoder.grant()

    def test_denied_when_staging_tight(self):
        _, encoder, store, _ = make_encoder(staging=64)
        store.accept(b"\x00" * 50)
        assert not encoder.grant()

    def test_reservations_shrink_the_budget(self):
        _, encoder, _, _ = make_encoder(staging=64)
        assert encoder.grant()
        for _ in range(5):
            encoder.reserve_end(1)   # 2 header + 8 content each
        assert not encoder.grant()

    def test_disabled_encoder_always_grants(self):
        _, encoder, store, _ = make_encoder(staging=64)
        store.accept(b"\x00" * 60)
        encoder.enabled = False
        assert encoder.grant()


class TestRecording:
    def test_start_end_same_cycle_one_packet(self):
        sim, encoder, store, table = make_encoder()
        encoder.record_start(0, b"\x01\x02\x03\x04")
        encoder.record_end(0)
        sim.step()
        store.flush()
        packets = deserialize_packets(store.trace_bytes, table, True)
        assert len(packets) == 1
        assert packets[0].starts == 1 and packets[0].ends == 1

    def test_idle_cycles_emit_nothing(self):
        sim, encoder, store, _ = make_encoder()
        sim.run(10)
        assert encoder.packets_emitted == 0
        assert store.total_packet_bytes == 0

    def test_output_end_content_only_in_validation_mode(self):
        sim, encoder, store, table = make_encoder(record_output_contents=True)
        encoder.reserve_end(1)
        encoder.record_end(1, b"\x11" * 8)
        sim.step()
        store.flush()
        packets = deserialize_packets(store.trace_bytes, table, True)
        assert packets[0].validation[1] == b"\x11" * 8

        sim2, encoder2, store2, table2 = make_encoder(
            record_output_contents=False)
        encoder2.reserve_end(1)
        encoder2.record_end(1, b"\x11" * 8)
        sim2.step()
        store2.flush()
        packets2 = deserialize_packets(store2.trace_bytes, table2, False)
        assert packets2[0].validation == {}
        assert len(store2.trace_bytes) < len(store.trace_bytes)

    def test_wrong_content_length_rejected(self):
        _, encoder, _, _ = make_encoder()
        with pytest.raises(SimulationError):
            encoder.record_start(0, b"\x00" * 3)

    def test_start_on_output_rejected(self):
        _, encoder, _, _ = make_encoder()
        with pytest.raises(SimulationError):
            encoder.record_start(1, b"\x00" * 8)

    def test_negative_reservation_detected(self):
        _, encoder, _, _ = make_encoder()
        with pytest.raises(SimulationError):
            encoder.record_end(0)   # end without a matching reservation

    def test_event_counter(self):
        sim, encoder, store, _ = make_encoder()
        encoder.record_start(0, b"\x00" * 4)
        encoder.record_end(0)
        assert encoder.events_recorded == 2
