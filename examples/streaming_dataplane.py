#!/usr/bin/env python3
"""Recording a SmartNIC-style streaming dataplane (AXI-Stream extension).

The intro's networking motivation, end to end: a packet filter consumes an
ingress AXI-Stream, drops packets matching a protocol rule, rewrites
TTL/checksum on the rest, and forwards them on an egress stream, with its
control plane on the ocl register bus. Vidi monitors the two stream ports
exactly like the AXI interfaces (a 27-channel table), records a noisy
production run, and replays it — including the cross-channel ordering
between the control-plane start and the first ingress beat.

Run:  python examples/streaming_dataplane.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import packet_filter
from repro.core import VidiConfig, compare_traces
from repro.platform import F1Deployment

AXIS_CONFIG = ("sda", "ocl", "bar1", "pcim", "pcis", "axis_in", "axis_out")


def main() -> None:
    accelerator_factory, host_factory = packet_filter.make(n_packets=32)
    deployment = F1Deployment(
        "nic", accelerator_factory, VidiConfig.r2(interfaces=AXIS_CONFIG),
        seed=17)
    packets = packet_filter.workload(17, n_packets=32)
    deployment.stream_driver.load_packets(packets)
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=17))
    cycles = deployment.run_to_completion()

    golden, dropped = packet_filter.filter_golden(packets, 17)
    egress = deployment.stream_collector.packets()
    print(f"production run: {len(packets)} packets in, "
          f"{result['forwarded']} forwarded / {result['dropped']} dropped "
          f"over {cycles} cycles; egress "
          f"{'matches' if egress == golden else 'DIFFERS FROM'} the golden "
          "model")

    trace = deployment.recorded_trace({"app": "packet_filter"})
    print(f"trace: {trace.size_bytes} bytes across {trace.table.n} monitored "
          "channels (25 AXI + 2 AXI-Stream)")

    replay = F1Deployment("nic_replay", accelerator_factory,
                          VidiConfig.r3(interfaces=AXIS_CONFIG),
                          replay_trace=trace)
    replay.run_replay()
    report = compare_traces(trace, replay.recorded_trace())
    print(f"replay: {report.summary()}")
    print(f"replayed counters: forwarded="
          f"{replay.accelerator.regs[packet_filter.REG_FORWARDED]}, "
          f"dropped={replay.accelerator.regs[packet_filter.REG_DROPPED]}")


if __name__ == "__main__":
    main()
