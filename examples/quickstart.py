#!/usr/bin/env python3
"""Quickstart: record an FPGA execution, replay it, check for divergence.

This walks the full Vidi workflow on the SHA-256 accelerator:

1. deploy the accelerator on the simulated F1 instance with Vidi in
   recording mode (R2) and run the host program;
2. persist the recorded trace to disk;
3. redeploy the accelerator with Vidi in replay mode (R3) — no host, no
   DMA engines, every input comes from the trace — and replay;
4. compare the replay's validation trace against the recording (§3.6);
5. render a Fig.1-style VALID/READY waveform of a monitored channel.

Run:  python examples/quickstart.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.sha256 import make
from repro.core import TraceFile, VidiConfig, compare_traces
from repro.platform import F1Deployment
from repro.sim import WaveformRecorder, render_ascii


def main() -> None:
    accelerator_factory, host_factory = make()

    # ------------------------------------------------------------------
    # 1. Record (configuration R2).
    # ------------------------------------------------------------------
    recording = F1Deployment("quickstart", accelerator_factory,
                             VidiConfig.r2(), seed=1)
    # Tap the control-register write-address channel for the waveform.
    ocl_aw = recording.app_interfaces["ocl"].aw
    waves = WaveformRecorder(recording.sim,
                             [ocl_aw.valid, ocl_aw.ready, ocl_aw.payload])
    result = {}
    recording.cpu.add_thread(host_factory(result, seed=7, scale=0.5))
    cycles = recording.run_to_completion()
    assert result["ok"], "SHA-256 output mismatch"
    print(f"recorded execution: {cycles} cycles, digest verified")

    # ------------------------------------------------------------------
    # 2. Persist the trace.
    # ------------------------------------------------------------------
    trace = recording.recorded_trace({"app": "sha256", "seed": 7})
    path = Path(tempfile.gettempdir()) / "vidi_quickstart.trace"
    trace.save(path)
    print(f"trace: {trace.size_bytes} bytes "
          f"({len(trace.packets())} cycle packets) -> {path}")

    # ------------------------------------------------------------------
    # 3. Replay (configuration R3) from the saved trace.
    # ------------------------------------------------------------------
    replay = F1Deployment("quickstart_replay", accelerator_factory,
                          VidiConfig.r3(), replay_trace=TraceFile.load(path))
    replay_cycles = replay.run_replay()
    print(f"replayed in {replay_cycles} cycles "
          f"(replay needs no host — inputs come from the trace)")

    # ------------------------------------------------------------------
    # 4. Divergence detection.
    # ------------------------------------------------------------------
    report = compare_traces(trace, replay.recorded_trace())
    print(f"divergence check: {report.summary()}")

    # ------------------------------------------------------------------
    # 5. A waveform, in the style of the paper's Fig. 1.
    # ------------------------------------------------------------------
    history = waves.values(ocl_aw.valid)
    first = next((i for i, v in enumerate(history) if v), 0)
    print("\nocl.aw handshake around the first register write:")
    print(render_ascii(waves, start=max(first - 3, 0), end=first + 12))


if __name__ == "__main__":
    main()
