#!/usr/bin/env python3
"""§4.1 extension: record/replay an *internal* channel of a design.

The paper's prototype monitors the CPU↔FPGA boundary, but the design
supports any transaction-based boundary — the authors extended it to DDR4
and application-internal buses with ~13 lines per interface. This example
does the same with this library's primitives: a two-stage pipeline
(feature extractor → classifier) communicates over an internal
VALID/READY channel; we deploy a monitor on just that channel, record the
inter-stage traffic, and then replay the *classifier stage alone* —
without the extractor — from the trace.

Run:  python examples/component_replay.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import random

from repro.channels import Channel, ChannelSource, Field, PayloadSpec
from repro.core import ChannelMonitor, TraceEncoder, TraceFile, TraceStore
from repro.core.decoder import TraceDecoder
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.replayer import ChannelReplayer, ReplayCoordinator
from repro.sim import Module, Simulator

TOKEN = PayloadSpec([Field("feature", 24), Field("last", 1)])


class Extractor(Module):
    """Stage A: streams feature tokens onto the internal channel."""

    def __init__(self, channel: Channel, seed: int, count: int):
        super().__init__("extractor")
        self.source = self.submodule(ChannelSource("extractor.out", channel))
        rng = random.Random(seed)
        for i in range(count):
            self.source.send({"feature": rng.getrandbits(24),
                              "last": 1 if i == count - 1 else 0})


class Classifier(Module):
    """Stage B: folds features into a running classification hash."""

    def __init__(self, channel: Channel):
        super().__init__("classifier")
        self.channel = channel
        self.state = 0x811C9DC5
        self.finished = False

    def comb(self):
        self.channel.ready.drive(0 if self.finished else 1)

    def seq(self):
        if self.channel.fired:
            fields = self.channel.payload_dict()
            self.state = ((self.state ^ fields["feature"]) * 0x0100_0193
                          ) & 0xFFFF_FFFF
            if fields["last"]:
                self.finished = True


def record_pipeline(seed: int, count: int):
    """Full pipeline with a monitor on the internal channel (13-ish lines)."""
    sim = Simulator("record")
    up = Channel("stageA.out", TOKEN, direction="in")
    down = Channel("stageB.in", TOKEN, direction="in")
    table = ChannelTable([ChannelInfo(
        index=0, name="pipe.features", direction="in",
        content_bytes=TOKEN.byte_length, payload_bits=TOKEN.width)])
    store = TraceStore("store")
    encoder = TraceEncoder("enc", table, store)
    monitor = ChannelMonitor("mon", 0, up, down, encoder, "in")
    classifier = Classifier(down)
    for module in (up, down, Extractor(up, seed, count), classifier,
                   monitor, encoder, store):
        sim.add(module)
    sim.run_until(lambda: classifier.finished, max_cycles=50_000)
    store.flush()
    trace = TraceFile(table=table, body=store.trace_bytes,
                      with_validation=True,
                      metadata={"component": "classifier-input"})
    return classifier.state, trace


def replay_classifier_alone(trace: TraceFile):
    """Stage B in isolation, inputs recreated from the trace."""
    sim = Simulator("replay")
    channel = Channel("stageB.in", TOKEN, direction="in")
    coordinator = ReplayCoordinator(trace.table.n)
    feed = TraceDecoder(trace.table).all_feeds(trace.body)[0]
    replayer = ChannelReplayer("rep", 0, channel, coordinator, "in", feed)
    classifier = Classifier(channel)
    for module in (channel, replayer, classifier):
        sim.add(module)
    sim.run_until(lambda: classifier.finished, max_cycles=50_000)
    return classifier.state


def main() -> None:
    recorded_state, trace = record_pipeline(seed=11, count=500)
    print(f"pipeline run: classifier state {recorded_state:#010x}; internal "
          f"trace {trace.size_bytes} bytes for 500 transactions")
    replayed_state = replay_classifier_alone(trace)
    print(f"classifier replayed in isolation: state {replayed_state:#010x} "
          f"({'match' if replayed_state == recorded_state else 'MISMATCH'})")
    assert replayed_state == recorded_state


if __name__ == "__main__":
    main()
