#!/usr/bin/env python3
"""A production-style workflow: windowed recording, checkpoints, waveforms.

Long-running deployments don't want to record from power-on. This example
combines the reproduction's extension features:

1. the §4.2 runtime library gates recording around one FPGA invocation
   (initialisation traffic is never recorded);
2. a §7-style checkpoint captures the quiescent architectural state, so
   the recorded suffix can be replayed later against the snapshot;
3. the replayed execution is captured as a standard VCD waveform for a
   viewer such as GTKWave.

Run:  python examples/production_workflow.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import dram_dma
from repro.core import (
    VidiConfig,
    VidiRuntime,
    compare_traces,
    restore_checkpoint,
    take_checkpoint,
)
from repro.platform import F1Deployment
from repro.sim import WaveformRecorder, write_vcd


def main() -> None:
    accelerator_factory, _ = dram_dma.make(polling=False)

    # ------------------------------------------------------------------
    # Phase 1: warm-up runs nobody wants in the trace.
    # ------------------------------------------------------------------
    deployment = F1Deployment("prod", accelerator_factory, VidiConfig.r2(),
                              seed=40)
    runtime = VidiRuntime(deployment)
    runtime.disable_recording()
    warmup = {}
    deployment.cpu.add_thread(dram_dma.host_program(
        warmup, 41, n_words=16, polling=False, n_tasks=2))
    deployment.run_to_completion()
    assert warmup["ok"]
    print(f"warm-up: 2 tasks, {deployment.sim.cycle} cycles, recorded "
          f"{runtime.trace().size_bytes} bytes (recording was off)")

    # ------------------------------------------------------------------
    # Phase 2: checkpoint at the quiescent point.
    # ------------------------------------------------------------------
    checkpoint = take_checkpoint(deployment)
    print(f"checkpoint: {checkpoint.dram_bytes // 1024} KB of DRAM state, "
          f"doorbell counter {checkpoint.doorbell_count}, "
          f"cycle {checkpoint.cycle}")

    # ------------------------------------------------------------------
    # Phase 3: record exactly one production invocation from the
    # checkpointed state.
    # ------------------------------------------------------------------
    window = F1Deployment("prod_window", accelerator_factory,
                          VidiConfig.r2(), seed=42)
    restore_checkpoint(window, checkpoint)
    window_runtime = VidiRuntime(window)
    interesting = {}
    window.cpu.add_thread(dram_dma.host_program(
        interesting, 43, n_words=16, polling=False, n_tasks=1,
        doorbell_base=checkpoint.doorbell_count))
    with window_runtime.recording():
        window.run_to_completion()
    assert interesting["ok"]
    trace = window_runtime.trace({"phase": "invocation-3"})
    print(f"window: 1 task recorded, {trace.size_bytes} bytes")

    # ------------------------------------------------------------------
    # Phase 4: replay the suffix against the checkpoint, dumping a VCD.
    # ------------------------------------------------------------------
    replay = F1Deployment("prod_replay", accelerator_factory,
                          VidiConfig.r3(), replay_trace=trace)
    restore_checkpoint(replay, checkpoint, restore_host=False)
    ocl_w = replay.app_interfaces["ocl"].w
    pcim_w = replay.app_interfaces["pcim"].w
    waves = WaveformRecorder(replay.sim, [
        ocl_w.valid, ocl_w.ready, pcim_w.valid, pcim_w.ready])
    replay.run_replay()
    report = compare_traces(trace, replay.recorded_trace())
    print(f"replay: {report.summary()}")

    vcd_path = Path(tempfile.gettempdir()) / "vidi_replay.vcd"
    write_vcd(waves, vcd_path, module="replay")
    print(f"waveform: {vcd_path} "
          f"({vcd_path.stat().st_size} bytes of VCD for your viewer)")


if __name__ == "__main__":
    main()
