#!/usr/bin/env python3
"""The §5.3 testing workflow: mutate a production trace into a corner case.

The atop-filter echo server passes every ordinary execution, in simulation
and on hardware, because real DMA controllers happen to complete the
write-address transaction before the write-data beats. The AXI protocol
does not require that order — and the filter deadlocks when it is broken.

Workflow:
1. capture a production-like trace of the healthy echo server;
2. use the mutation tool to reorder one W end before its AW end (legal per
   AXI, never observed in the wild);
3. replay the mutated trace against the unchanged design: deadlock;
4. replay it against the patched filter: passes.

Run:  python examples/testing_with_mutation.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import atop_echo
from repro.core import EventRef, TraceMutator, VidiConfig
from repro.errors import WatchdogTimeout
from repro.platform import F1Deployment


def replay(trace, buggy: bool, max_cycles: int):
    factory, _ = atop_echo.make(buggy=buggy)
    deployment = F1Deployment("replay", factory, VidiConfig.r3(),
                              replay_trace=trace)
    try:
        cycles = deployment.run_replay(max_cycles=max_cycles)
        return deployment, cycles, False
    except WatchdogTimeout:
        return deployment, max_cycles, True


def main() -> None:
    # 1. Capture a trace of the healthy execution.
    factory, host_factory = atop_echo.make(buggy=True)
    recording = F1Deployment("prod", factory, VidiConfig.r2(), seed=5)
    result = {}
    recording.cpu.add_thread(host_factory(result, seed=5))
    recording.run_to_completion()
    print(f"production run: pong {'matches' if result['ok'] else 'differs'}, "
          f"filter healthy={not recording.accelerator.filter.wedged}")
    trace = recording.recorded_trace({"app": "atop_echo"})

    # 2. Mutate: complete the first W data beat before the AW address.
    mutator = TraceMutator(trace)
    mutator.move_end_before(EventRef("end", "pcim.w", 0),
                            EventRef("end", "pcim.aw", 0))
    problem = mutator.validate()
    assert problem is None, problem
    mutated = mutator.build({"mutation": "w-end before aw-end"})
    print("mutation: pcim.w end #0 reordered before pcim.aw end #0 "
          "(AXI-legal, never produced by this environment)")

    # 3. Replay against the unchanged design.
    buggy_replay, cycles, timed_out = replay(mutated, buggy=True,
                                             max_cycles=20_000)
    print(f"buggy filter:  {'DEADLOCK' if timed_out else 'completed'} "
          f"after {cycles} cycles "
          f"(wedge latch={buggy_replay.accelerator.filter.wedged})")

    # 4. Replay against the upstream bugfix.
    fixed_replay, cycles, timed_out = replay(mutated, buggy=False,
                                             max_cycles=200_000)
    print(f"fixed filter:  {'DEADLOCK' if timed_out else 'completed'} "
          f"after {cycles} cycles "
          f"(wedge latch={fixed_replay.accelerator.filter.wedged})")


if __name__ == "__main__":
    main()
