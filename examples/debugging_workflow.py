#!/usr/bin/env python3
"""The §5.2 debugging workflow: catch a hardware-only bug, replay it at will.

The echo server uses a buggy frame FIFO and two host threads; when the
starter thread (T2) is scheduled late, the FIFO overflows and silently
drops mid-frame fragments. The vendor simulator can't even run the
two-threaded host, so the bug is invisible before deployment. With Vidi:

1. record the buggy execution on (simulated) hardware;
2. replay the trace as many times as diagnosis requires — the exact same
   fragments are dropped every time;
3. point a LossCheck-style tool at the replay to list the lost fragments.

Run:  python examples/debugging_workflow.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import frame_fifo_echo
from repro.core import VidiConfig
from repro.errors import SimulationError
from repro.platform import EnvironmentMode, F1Deployment


def try_vendor_simulation() -> None:
    """Step 0: the traditional route fails before it starts."""
    accelerator_factory, host_threads = frame_fifo_echo.make(start_delay=3000)
    deployment = F1Deployment("sim_attempt", accelerator_factory,
                              VidiConfig.r1(),
                              env_mode=EnvironmentMode.VENDOR_SIM, seed=0)
    try:
        for thread in host_threads({}, seed=0):
            deployment.cpu.add_thread(thread)
    except SimulationError as exc:
        print(f"vendor simulation: {exc}")


def main() -> None:
    try_vendor_simulation()

    # ------------------------------------------------------------------
    # 1. Record the buggy execution on hardware.
    # ------------------------------------------------------------------
    accelerator_factory, host_threads = frame_fifo_echo.make(
        buggy=True, start_delay=3000)   # T2 unluckily late
    recording = F1Deployment("hw", accelerator_factory, VidiConfig.r2(),
                             env_mode=EnvironmentMode.HARDWARE, seed=3)
    result = {}
    for thread in host_threads(result, seed=3):
        recording.cpu.add_thread(thread)
    recording.run_to_completion()
    fifo = recording.accelerator.fifo
    print(f"hardware run: echo {'OK' if result['ok'] else 'CORRUPTED'} — "
          f"{result['mismatch_bytes']} bytes wrong, first at byte "
          f"{result['first_mismatch']}, FIFO dropped "
          f"{fifo.dropped_fragments} fragments")
    trace = recording.recorded_trace({"bug": "delayed-start"})

    # ------------------------------------------------------------------
    # 2. Replay the buggy trace — deterministically, as often as needed.
    # ------------------------------------------------------------------
    for attempt in range(1, 4):
        replay_factory, _ = frame_fifo_echo.make(buggy=True)
        replay = F1Deployment(f"replay{attempt}", replay_factory,
                              VidiConfig.r3(), replay_trace=trace)
        replay.run_replay()
        dropped = replay.accelerator.fifo.dropped_fragments
        print(f"replay #{attempt}: FIFO dropped {dropped} fragments "
              f"({'same as hardware' if dropped == fifo.dropped_fragments else 'DIVERGED'})")

    # ------------------------------------------------------------------
    # 3. LossCheck-style diagnosis on the replayed execution.
    # ------------------------------------------------------------------
    replay_factory, _ = frame_fifo_echo.make(buggy=True)
    diagnosis = F1Deployment("diagnose", replay_factory, VidiConfig.r3(),
                             replay_trace=trace)
    diagnosis.run_replay()
    lost = diagnosis.accelerator.fifo.dropped_log
    print(f"\nLossCheck report: {len(lost)} fragments overwritten/lost; "
          f"first five: {[hex(v) for v in lost[:5]]}")
    print("root cause: frame admitted when remaining FIFO capacity was "
          "unaligned with the frame size (drops instead of back-pressure)")


if __name__ == "__main__":
    main()
