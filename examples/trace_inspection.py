#!/usr/bin/env python3
"""Inspecting a recorded trace: events, contents, happens-before structure.

Vidi traces are a foundation for building further tools (§1). This example
records the DRAM DMA application and then works on the trace *offline*:

* per-channel transaction statistics,
* reconstruction of each end event's vector clock,
* happens-before queries between individual transaction events,
* the §6 storage comparison for this exact execution.

Run:  python examples/trace_inspection.py
"""

import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.dram_dma import make
from repro.baselines.cycle_accurate import cycle_accurate_trace_bytes
from repro.core import TransactionEvent, VidiConfig, happens_before
from repro.platform import F1Deployment


def main() -> None:
    accelerator_factory, host_factory = make()
    deployment = F1Deployment("inspect", accelerator_factory,
                              VidiConfig.r2(), seed=13)
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=13, scale=1.0))
    cycles = deployment.run_to_completion()
    trace = deployment.recorded_trace({"app": "dram_dma"})
    table = trace.table
    packets = trace.packets()
    print(f"execution: {cycles} cycles; trace: {trace.size_bytes} bytes, "
          f"{len(packets)} eventful cycle packets")

    # ------------------------------------------------------------------
    # Per-channel statistics.
    # ------------------------------------------------------------------
    starts, ends = Counter(), Counter()
    for packet in packets:
        for index in range(table.n):
            if (packet.starts >> index) & 1:
                starts[index] += 1
            if (packet.ends >> index) & 1:
                ends[index] += 1
    print("\nbusiest channels (transactions, direction):")
    for index, n in ends.most_common(6):
        info = table[index]
        print(f"  {info.name:<10s} {n:5d} txns  ({info.direction}, "
              f"{info.payload_bits} payload bits)")

    # ------------------------------------------------------------------
    # Vector clocks and happens-before queries.
    # ------------------------------------------------------------------
    counts = [0] * table.n
    events = []
    for packet in packets:
        snapshot = tuple(counts)
        for index in range(table.n):
            if (packet.ends >> index) & 1:
                events.append(TransactionEvent(
                    kind="end", channel=index, seq_no=counts[index],
                    vclock=snapshot))
        for index in range(table.n):
            if (packet.ends >> index) & 1:
                counts[index] += 1
    ctrl_writes = [e for e in events
                   if table[e.channel].name == "ocl.w"]
    dma_beats = [e for e in events
                 if table[e.channel].name == "pcis.w"]
    first_ctrl = ctrl_writes[3]   # the CTRL=1 write of task 1 (4th MMIO write)
    before = sum(1 for beat in dma_beats if happens_before(beat, first_ctrl))
    print(f"\nhappens-before: {before} of {len(dma_beats)} DMA data beats "
          "completed before the first CTRL register write — the ordering a "
          "replay must (and does) preserve")

    # ------------------------------------------------------------------
    # Tools built on the trace: profiler and security audit (§1's vision).
    # ------------------------------------------------------------------
    from repro.analysis import (AuditPolicy, MemoryWindow, audit_trace,
                                profile_trace, render_audit, render_profile)
    from repro.apps.base import DOORBELL_ADDR
    from repro.apps.dram_dma import MIRROR_HOST_ADDR

    print("\n" + render_profile(profile_trace(trace)))
    policy = [AuditPolicy("pcim", [
        MemoryWindow(MIRROR_HOST_ADDR, 0x1000, allow_read=False),
        MemoryWindow(DOORBELL_ADDR, 64, allow_read=False),
    ])]
    print("\n" + render_audit(audit_trace(trace, policy)))

    # ------------------------------------------------------------------
    # Storage comparison for this exact execution (§5.5 / §6).
    # ------------------------------------------------------------------
    channels = [ch for iface in deployment.app_interfaces.values()
                for ch in iface.channel_list()]
    cycle_accurate = cycle_accurate_trace_bytes(channels, cycles)
    print(f"\nstorage: Vidi {trace.size_bytes:,} bytes vs cycle-accurate "
          f"{cycle_accurate:,} bytes -> {cycle_accurate / trace.size_bytes:.0f}x "
          "reduction from coarse-grained input recording")


if __name__ == "__main__":
    main()
