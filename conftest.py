"""Pytest bootstrap: make ``src/`` importable even without installation.

``pip install -e .`` (or ``python setup.py develop``) is the supported
install; this fallback keeps ``pytest`` working in a fresh checkout on
machines without the ``wheel`` package, where PEP-517 editable installs
are unavailable offline.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
