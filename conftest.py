"""Pytest bootstrap: make ``src/`` importable even without installation.

``pip install -e .`` (or ``python setup.py develop``) is the supported
install; this fallback keeps ``pytest`` working in a fresh checkout on
machines without the ``wheel`` package, where PEP-517 editable installs
are unavailable offline.
"""

import os
import signal
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# ----------------------------------------------------------------------
# per-test timeout guard
# ----------------------------------------------------------------------
#
# The fault-injection suite deliberately drives replay toward livelock; a
# regression in the progress watchdog would otherwise hang the whole run.
# When the ``pytest-timeout`` plugin is installed it owns this job; on the
# bare interpreters CI uses we fall back to a SIGALRM alarm around each
# test (main thread only, POSIX only — exactly where CI runs).

DEFAULT_TEST_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))

_HAVE_PYTEST_TIMEOUT = False
try:
    import pytest_timeout  # noqa: F401  (presence check only)

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    pass


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than this "
        "(SIGALRM fallback when pytest-timeout is not installed)")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    use_alarm = (
        not _HAVE_PYTEST_TIMEOUT
        and DEFAULT_TEST_TIMEOUT_S > 0
        and hasattr(signal, "SIGALRM")
    )
    if not use_alarm:
        yield
        return
    seconds = DEFAULT_TEST_TIMEOUT_S
    marker = item.get_closest_marker("timeout")
    if marker and marker.args:
        seconds = int(marker.args[0])

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {seconds}s per-test guard "
            "(REPRO_TEST_TIMEOUT to adjust)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
