import sys
sys.path.insert(0, "/root/repo/scratch")
from common import *

ok = True
for key, spec in APPS.items():
    # scalar reference
    refs = {}
    for seed in SEEDS:
        dep, result = build(spec, seed)
        dep.run_to_completion(max_cycles=4_000_000)
        spec.check(result)
        refs[seed] = fingerprint(dep, result, seed, spec)
    # batched
    deps = []
    for seed in SEEDS:
        dep, result = build(spec, seed)
        deps.append((seed, dep, result))
    kernel, packed, scalar_idx = BatchKernel.pack([d.sim for _, d, _ in deps])
    assert kernel is not None and not scalar_idx, (key, packed, scalar_idx)
    outs = kernel.run_until([lambda d=d: d.cpu.done for _, d, _ in deps],
                            4_000_000, what="completion")
    kernel.detach_all()
    warp = 0
    for (seed, dep, result), out in zip(deps, outs):
        assert out.status == "done", (key, seed, out.status, out.error)
        spec.check(result)
        got = fingerprint(dep, result, seed, spec)
        warp = max(warp, 100 * dep.sim.warped_cycles // max(dep.sim.cycle, 1))
        if got != refs[seed]:
            ok = False
            print(f"MISMATCH {key} seed {seed}:\n  ref {refs[seed]}\n  got {got}")
    demo = sum(kernel.demoted)
    print(f"{key:18s} ok warp%={warp:3d} demoted={demo} rounds={kernel.rounds}")
print("ALL EQUIVALENT" if ok else "FAILED")
sys.exit(0 if ok else 1)
