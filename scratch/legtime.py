import sys
from time import perf_counter
from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, trace_interfaces
from repro.platform import F1Deployment

ROUNDS = 15
spec = get_app("sha256")
acc_factory, host_factory = spec.make()

def legs(scheduler):
    best_rec = best_rep = float("inf")
    for _ in range(ROUNDS):
        rec = F1Deployment("t_rec", acc_factory, bench_config(VidiConfig.r2),
                           seed=1, scheduler=scheduler)
        result = {}
        rec.cpu.add_thread(host_factory(result, seed=1, scale=4.0))
        rec.sim._step_callable()
        t0 = perf_counter(); rec.run_to_completion(); best_rec = min(best_rec, perf_counter() - t0)
        trace = rec.recorded_trace({"app": "sha256", "seed": 1})
        acc2, _ = spec.make()
        rep = F1Deployment("t_rep", acc2,
                           VidiConfig.r3(interfaces=trace_interfaces(trace)),
                           replay_trace=trace, scheduler=scheduler)
        rep.sim._step_callable()
        t0 = perf_counter(); rep.run_replay(); best_rep = min(best_rep, perf_counter() - t0)
    return best_rec, best_rep

ev = legs("event"); cp = legs("compiled")
print(f"record: event {ev[0]*1e3:7.2f}ms compiled {cp[0]*1e3:7.2f}ms  {ev[0]/cp[0]:.2f}x")
print(f"replay: event {ev[1]*1e3:7.2f}ms compiled {cp[1]*1e3:7.2f}ms  {ev[1]/cp[1]:.2f}x")
