import sys, time
sys.path.insert(0, "/root/repo/src"); sys.path.insert(0, "/root/repo/scratch")
from common import build
from repro.apps.registry import APPS
from repro.sim.batch import BatchKernel

for key in ("sha256", "mobilenet"):
    spec = APPS[key]
    t0 = time.perf_counter()
    deps = [build(spec, seed) for seed in range(16)]
    t_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    for d, _ in deps:
        d.run_to_completion(max_cycles=4_000_000)
    t_run = time.perf_counter() - t0
    t0 = time.perf_counter()
    deps2 = [build(spec, seed) for seed in range(16)]
    t_build2 = time.perf_counter() - t0
    t0 = time.perf_counter()
    kernel, _, _ = BatchKernel.pack([d.sim for d, _ in deps2])
    t_pack = time.perf_counter() - t0
    t0 = time.perf_counter()
    kernel.run_until([lambda d=d: d.cpu.done for d, _ in deps2], 4_000_000)
    kernel.detach_all()
    t_brun = time.perf_counter() - t0
    print(f"{key}: build {t_build:.2f}/{t_build2:.2f} scalar-run {t_run:.2f} "
          f"pack {t_pack:.2f} batch-run {t_brun:.2f}")
