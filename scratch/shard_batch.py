import sys
from repro.apps.registry import get_app
from repro.harness.sharded_replay import record_with_checkpoints, replay_sharded
from repro.core.divergence import compare_traces

for app in ("sha256", "optical_flow"):
    spec = get_app(app)
    metrics, cps = record_with_checkpoints(spec, seed=3, scheduler="compiled")
    trace = metrics.result["trace"]
    ref = replay_sharded(spec, trace, cps, segments=4, jobs=1,
                         scheduler="compiled")
    bat = replay_sharded(spec, trace, cps, segments=4, batched=True,
                         scheduler="compiled")
    a, b = bytes(ref.validation.body), bytes(bat.validation.body)
    assert a == b, f"{app}: stitched bytes differ"
    assert [s["cycles"] for s in ref.shards] == [s["cycles"] for s in bat.shards], \
        f"{app}: cycles {[s['cycles'] for s in ref.shards]} vs {[s['cycles'] for s in bat.shards]}"
    rep = compare_traces(trace, bat.validation)
    assert rep.clean, f"{app}: not equivalent to reference"
    print(f"{app:14s} OK segs={ref.segments} cycles={[s['cycles'] for s in bat.shards]}")
print("SHARD BATCH OK")
