from time import perf_counter
from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, trace_interfaces
from repro.platform import F1Deployment

ROUNDS = 10
spec = get_app("sha256")
acc_factory, host_factory = spec.make()
rec = F1Deployment("t_rec", acc_factory, bench_config(VidiConfig.r2),
                   seed=1, scheduler="compiled")
result = {}
rec.cpu.add_thread(host_factory(result, seed=1, scale=4.0))
rec.run_to_completion()
trace = rec.recorded_trace({"app": "sha256", "seed": 1})

def leg(scheduler, warp):
    best = float("inf")
    for _ in range(ROUNDS):
        acc2, _ = spec.make()
        rep = F1Deployment("t_rep", acc2,
                           VidiConfig.r3(interfaces=trace_interfaces(trace)),
                           replay_trace=trace, scheduler=scheduler,
                           time_warp=warp)
        rep.sim._step_callable()
        t0 = perf_counter(); cycles = rep.run_replay(); best = min(best, perf_counter() - t0)
    return best, cycles

for warp in (True, False):
    ev, evc = leg("event", warp); cp, cpc = leg("compiled", warp)
    assert evc == cpc
    print(f"warp={warp!s:5s} event {ev*1e3:7.2f}ms compiled {cp*1e3:7.2f}ms  {ev/cp:.2f}x  cycles={evc}")
