"""Batch-vs-scalar bit-identical equivalence across all registered apps."""
import sys
sys.path.insert(0, "/root/repo/src")
from dataclasses import replace as _replace
from repro.apps.registry import APPS
from repro.core.config import VidiConfig, VidiMode
from repro.platform.shell import F1Deployment
from repro.sim.batch import BatchKernel

SEEDS = [1, 7]

def build(spec, seed, scheduler="compiled", scale=None):
    config = VidiConfig(mode=VidiMode.RECORD)
    if spec.interfaces is not None and set(config.interfaces) != set(spec.interfaces):
        config = _replace(config, interfaces=tuple(spec.interfaces))
    acc_factory, host_factory = spec.make()
    dep = F1Deployment(f"run_{spec.key}", acc_factory, config,
                       seed=seed, scheduler=scheduler)
    result = {}
    if scale is None:
        scale = spec.default_scale
    if spec.stream_workload is not None:
        dep.stream_driver.load_packets(spec.stream_workload(seed, scale))
    dep.cpu.add_thread(host_factory(result, seed=seed, scale=scale))
    return dep, result

def fingerprint(dep, result, seed, spec):
    trace = dep.recorded_trace({"app": spec.key, "seed": seed})
    clean = {k: v for k, v in result.items() if k != "trace"}
    return (dep.sim.cycle, repr(sorted(clean.items())), trace.size_bytes)

