import cProfile, pstats, sys
from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, trace_interfaces
from repro.platform import F1Deployment

spec = get_app("sha256")
acc_factory, host_factory = spec.make()
recording = F1Deployment("cmp_rec", acc_factory, bench_config(VidiConfig.r2),
                         seed=1, scheduler="compiled")
result = {}
recording.cpu.add_thread(host_factory(result, seed=1, scale=4.0))
recording.run_to_completion()
trace = recording.recorded_trace({"app": "sha256", "seed": 1})

sched = sys.argv[1] if len(sys.argv) > 1 else "compiled"
acc2, _ = spec.make()
replaying = F1Deployment("cmp_rep", acc2,
                         VidiConfig.r3(interfaces=trace_interfaces(trace)),
                         replay_trace=trace, scheduler=sched)
replaying.sim._step_callable()
pr = cProfile.Profile()
pr.enable()
replaying.run_replay()
pr.disable()
pstats.Stats(pr).sort_stats("tottime").print_stats(30)
