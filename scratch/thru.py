import sys, time
sys.path.insert(0, "/root/repo/src"); sys.path.insert(0, "/root/repo/scratch")
from common import build
from repro.apps.registry import APPS
from repro.sim.batch import BatchKernel

N = 16
for key in (sys.argv[1:] or ["sha256", "mobilenet", "digit_recognition", "bnn", "dram_dma"]):
    spec = APPS[key]
    t0 = time.perf_counter()
    cycles = 0
    for seed in range(N):
        dep, result = build(spec, seed)
        cycles += dep.run_to_completion(max_cycles=4_000_000)
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    deps = [build(spec, seed) for seed in range(N)]
    kernel, packed, rest = BatchKernel.pack([d.sim for d, _ in deps])
    assert not rest
    outs = kernel.run_until([lambda d=d: d.cpu.done for d, _ in deps],
                            4_000_000, what="completion")
    kernel.detach_all()
    assert all(o.status == "done" for o in outs)
    t_batch = time.perf_counter() - t0
    print(f"{key:18s} scalar {t_scalar:6.2f}s batch {t_batch:6.2f}s "
          f"speedup {t_scalar / t_batch:5.2f}x  "
          f"({cycles} cycles, demoted {sum(kernel.demoted)})")
