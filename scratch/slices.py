from time import perf_counter
from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, trace_interfaces
from repro.platform import F1Deployment

spec = get_app("sha256")
acc_factory, host_factory = spec.make()
rec = F1Deployment("t_rec", acc_factory, bench_config(VidiConfig.r2),
                   seed=1, scheduler="compiled")
result = {}
rec.cpu.add_thread(host_factory(result, seed=1, scale=4.0))
rec.run_to_completion()
trace = rec.recorded_trace({"app": "sha256", "seed": 1})

def build(sched):
    acc2, _ = spec.make()
    rep = F1Deployment("t_rep", acc2,
                       VidiConfig.r3(interfaces=trace_interfaces(trace)),
                       replay_trace=trace, scheduler=sched)
    rep.sim.elaborate()
    return rep

rep = build("compiled")
names = [type(m).__name__ for m in rep.sim._seq_modules]
from collections import Counter
print("seq modules:", Counter(names))
print("comb modules:", Counter(type(m).__name__ for m in rep.sim._comb_modules))

def timed(rep):
    rep.sim._step_callable()
    best = 9e9
    # time one full replay; rebuild per round is costly, single-shot ok for sizing
    t0 = perf_counter()
    rep.sim.run_until(lambda: rep.shim.replay_done, 4_000_000, what="x")
    return perf_counter() - t0

base = min(timed(build("compiled")) for _ in range(6))
print(f"baseline compiled: {base*1e3:.2f}ms")

def nn(kind):
    ts = []
    for _ in range(6):
        rep = build("compiled")
        for m in rep.sim._seq_modules:
            if kind in type(m).__name__:
                m.seq = lambda: None
                # also kill comb cost attribution separately
        ts.append(timed(rep))
    return min(ts)

for kind in ("Monitor", "Encoder", "Store", "AxiSubordinate", "ChannelReplayer"):
    try:
        t = nn(kind)
        print(f"no-op {kind:16s}: {t*1e3:6.2f}ms  (slice ~{(base-t)*1e3:5.2f}ms)")
    except Exception as e:
        print(f"no-op {kind}: failed {type(e).__name__}: {e}")
