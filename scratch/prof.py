import sys, cProfile, pstats
sys.path.insert(0, "/root/repo/src"); sys.path.insert(0, "/root/repo/scratch")
from common import build
from repro.apps.registry import APPS
from repro.sim.batch import BatchKernel

key = sys.argv[1] if len(sys.argv) > 1 else "sha256"
spec = APPS[key]
deps = [build(spec, seed) for seed in range(16)]
kernel, _, _ = BatchKernel.pack([d.sim for d, _ in deps])
preds = [lambda d=d: d.cpu.done for d, _ in deps]
pr = cProfile.Profile()
pr.enable()
kernel.run_until(preds, 4_000_000, what="completion")
pr.disable()
kernel.detach_all()
pstats.Stats(pr).sort_stats("cumulative").print_stats(25)
