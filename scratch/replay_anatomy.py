from time import perf_counter
from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, trace_interfaces
from repro.platform import F1Deployment

spec = get_app("sha256")
acc_factory, host_factory = spec.make()
rec = F1Deployment("t_rec", acc_factory, bench_config(VidiConfig.r2),
                   seed=1, scheduler="compiled")
result = {}
rec.cpu.add_thread(host_factory(result, seed=1, scale=4.0))
rec.run_to_completion()
trace = rec.recorded_trace({"app": "sha256", "seed": 1})

for sched in ("event", "compiled"):
    best = {}
    for _ in range(10):
        acc2, _ = spec.make()
        rep = F1Deployment("t_rep", acc2,
                           VidiConfig.r3(interfaces=trace_interfaces(trace)),
                           replay_trace=trace, scheduler=sched)
        rep.sim._step_callable()
        sim, shim = rep.sim, rep.shim
        t0 = perf_counter()
        sim.run_until(lambda: shim.replay_done, 4_000_000, what="x")
        t1 = perf_counter()
        sim.run(64)
        t2 = perf_counter()
        for k, v in (("until", t1-t0), ("drain", t2-t1)):
            best[k] = min(best.get(k, 9e9), v)
    executed = sim.cycle - sim.warped_cycles
    print(f"{sched:9s} until {best['until']*1e3:6.2f}ms drain {best['drain']*1e3:6.2f}ms "
          f"cycles={sim.cycle} warped={sim.warped_cycles} jumps={sim.warp_jumps} executed={executed}")
