from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, trace_interfaces
from repro.platform import F1Deployment

spec = get_app("sha256")
acc_factory, host_factory = spec.make()
rec = F1Deployment("t_rec", acc_factory, bench_config(VidiConfig.r2),
                   seed=1, scheduler="compiled")
result = {}
rec.cpu.add_thread(host_factory(result, seed=1, scale=4.0))
rec.run_to_completion()
trace = rec.recorded_trace({"app": "sha256", "seed": 1})

for sched in ("event", "compiled"):
    acc2, _ = spec.make()
    rep = F1Deployment("t_rep", acc2,
                       VidiConfig.r3(interfaces=trace_interfaces(trace)),
                       replay_trace=trace, scheduler=sched)
    rep.sim._step_callable()
    rep.sim.run_until(lambda: rep.shim.replay_done, 4_000_000, what="x")
    s = rep.sim
    print(f"{sched:9s} cycle={s.cycle} comb_evals={s.comb_evals} "
          f"quiescent={s.quiescent_cycles} warped={s.warped_cycles} jumps={s.warp_jumps}")
