import sys
sys.path.insert(0, "/root/repo/src")
from repro.apps.registry import APPS
from repro.sim.batch import BatchKernel
sys.path.insert(0, "/root/repo/scratch")
from common import build, fingerprint

spec = APPS["dram_dma"]
seed = 1
dep, result = build(spec, seed)
dep.run_to_completion(max_cycles=4_000_000)
ref = fingerprint(dep, result, seed, spec)
print("ref cycles", ref[0], "trace", ref[2])

for min_skip in (0.25, -1.0):
    BatchKernel.DEMOTE_MIN_SKIP = min_skip
    dep2, result2 = build(spec, seed)
    kernel = BatchKernel([dep2.sim])
    outs = kernel.run_until([lambda: dep2.cpu.done], 4_000_000, what="completion")
    kernel.detach_all()
    got = fingerprint(dep2, result2, seed, spec)
    print(f"min_skip={min_skip}: status={outs[0].status} cycles={got[0]} "
          f"trace={got[2]} demoted={kernel.demoted} "
          f"result_match={got[1] == ref[1]} cycles_match={got[0] == ref[0]}")
