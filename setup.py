"""Legacy setup shim so ``pip install -e .`` works without build isolation."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Vidi (ASPLOS 2023) reproduction: transaction-level record/replay "
        "for simulated reconfigurable hardware"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["vidi = repro.tools.cli:main"]},
)
