"""Ablation A2 — order-less record/replay (DebugGovernor-style) fails.

Expected shape (paper §1): tools that record per-channel contents but no
cross-channel ordering "cannot support applications whose behavior depends
upon the ordering of inputs sent on different input channels — including
all of those used in our evaluation". We record DRAM DMA once, then replay
it (a) with Vidi and (b) order-less; Vidi reproduces the outputs, the
order-less replay starts the kernel before its data has arrived and
produces different outputs.
"""

from repro.analysis.tables import render_table
from repro.apps.registry import get_app
from repro.baselines.orderless import OrderlessRecorder, OrderlessReplayer
from repro.core import VidiConfig, compare_traces
from repro.harness.runner import bench_config, record_run, replay_run
from repro.platform.interfaces import make_f1_interfaces
from repro.sim import Simulator


def app_channels(interfaces):
    return [ch for iface in interfaces.values() for ch in iface.channel_list()]


def run_orderless_comparison(seed: int = 11):
    spec = get_app("dram_dma")
    # 1. One recorded execution, with both Vidi (R2) and an order-less tap.
    from repro.platform.shell import F1Deployment
    acc_factory, host_factory = spec.make()
    deployment = F1Deployment("ol", acc_factory,
                              bench_config(VidiConfig.r2), seed=seed)
    tap = OrderlessRecorder(
        "ol.rec", app_channels(deployment.app_interfaces))
    deployment.sim.add(tap)
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=seed, scale=1.0))
    deployment.run_to_completion(max_cycles=2_000_000)
    spec.check(result)
    trace = deployment.recorded_trace()
    reference_outputs = {
        name: list(stream) for name, stream in tap.streams.items()
        if any(c.name == name and c.direction == "out"
               for c in app_channels(deployment.app_interfaces))
    }

    # 2. Vidi replay: transaction determinism preserves output ordering.
    vidi_replay = replay_run(spec, trace)
    vidi_report = compare_traces(trace, vidi_replay.result["validation"])

    # 3. Order-less replay: fresh accelerator, per-channel streams only.
    sim = Simulator("ol_replay")
    interfaces = make_f1_interfaces("olr")
    for iface in interfaces.values():
        sim.add(iface)
    accelerator = spec.make()[0](interfaces)
    channels = app_channels(interfaces)
    name_map = {}   # recorded app-side names -> replay-side names
    for rec_ch, rep_ch in zip(app_channels(deployment.app_interfaces),
                              channels):
        name_map[rep_ch.name] = rec_ch.name
    streams = {ch.name: tap.streams[name_map[ch.name]] for ch in channels}
    replayer = OrderlessReplayer("ol.rep", channels, streams)
    sim.add(replayer)
    sim.add(accelerator)
    for _ in range(60_000):
        sim.step()
        if replayer.done:
            break
    for _ in range(200):
        sim.step()

    mismatched_channels = []
    for ch in channels:
        if ch.direction != "out":
            continue
        recorded = reference_outputs.get(name_map[ch.name], [])
        replayed = replayer.collected.get(ch.name, [])
        if recorded != replayed:
            mismatched_channels.append(name_map[ch.name].split(".", 2)[-1])
    return {
        "vidi_count_divergences": len(vidi_report.of_kind("count"))
        + len(vidi_report.of_kind("ordering")),
        "orderless_mismatched_channels": mismatched_channels,
    }


def test_ablation_orderless_replay_fails(benchmark, emit):
    outcome = benchmark.pedantic(run_orderless_comparison,
                                 iterations=1, rounds=1)
    emit("ablation_orderless", render_table(
        "Ablation A2: Vidi vs order-less replay of the same execution",
        ["Replayer", "Outcome"],
        [["Vidi (transaction determinism)",
          f"{outcome['vidi_count_divergences']} count/ordering divergences"],
         ["order-less (per-channel streams)",
          "output mismatch on " +
          (", ".join(outcome["orderless_mismatched_channels"]) or "none")]]))
    assert outcome["vidi_count_divergences"] == 0
    assert outcome["orderless_mismatched_channels"]
