"""Infrastructure bench — persistent compile cache + warm worker pool.

Not a paper artefact: documents the payoff of the two amortization
layers added for fleet-scale campaigns, on the workloads they were
built for.

* **Disk-tier compile speedup.** A structurally large design (a deep
  combinational chain, where levelization + codegen dominate) is
  compiled cold, then re-bound from the persistent schedule store the
  way a warm worker does it: entries preloaded once at startup
  (``schedule_store.preload``), every later compile a validated
  disk-tier hit. The gate is the steady-state ratio; the colder
  file-read hit (no preload, every byte re-read and re-validated) is
  reported alongside with its own regression floor.

* **Warm-pool campaign speedup.** An 8-cell campaign over two distinct
  topologies, dispatched with ``run_cells``: the cold baseline builds a
  fresh process pool per call and compiles in every worker; the warm
  side reuses the module-level pool with topology-affinity dispatch, so
  steady-state cells bind already-compiled schedules in already-started
  workers.

Both measurements cross-check results bit-for-bit against the cold
path — a speedup bought with divergence is a failure, not a win.
Results land in ``benchmarks/results/BENCH_warm.json``; the floors are
part of ``make check``.
"""

import json
from time import perf_counter

from conftest import RESULTS_DIR

from repro.harness import worker_pool
from repro.harness.runner import SweepCell, run_cells
from repro.sim import schedule_store
from repro.sim.compile import _SCHEDULE_CACHE, clear_schedule_cache, compile_kernel
from repro.sim.module import Module
from repro.sim.simulator import Simulator

CHAIN_DEPTH = 2000        # deep enough that levelization+codegen dominate
DISK_HIT_FLOOR = 10.0     # preloaded steady state (the warm-worker path)
FILE_HIT_FLOOR = 4.0      # cold-file hit: read + CRC + validate every time
CAMPAIGN_CELLS = 8
CAMPAIGN_JOBS = 4
WARM_POOL_FLOOR = 1.3


class Stage(Module):
    """src -> +1 chain element: a deterministic, compile-bound topology."""

    comb_static = True

    def __init__(self, name, src=None):
        super().__init__(name)
        self.src = src
        self.out = self.signal("out", width=32)
        if src is not None:
            self.sensitive_to(src)
        else:
            self.sensitive_to()
        self.drives(self.out)

    def comb(self):
        base = self.src.value if self.src is not None else 7
        self.out.drive(base + 1)


def _chain(depth):
    sim = Simulator(f"chain{depth}", scheduler="compiled")
    prev = None
    for i in range(depth):
        stage = Stage(f"s{i}", prev.out if prev is not None else None)
        sim.add(stage)
        prev = stage
    sim.elaborate()
    return sim, prev


def _chain_cell(cell):
    """Campaign worker: compile-then-run one chain cell (fork-inherited)."""
    depth = 700 + (cell.seed % 2)   # two distinct topologies across the sweep
    sim, tail = _chain(depth)
    sim.run(3)
    return {"seed": cell.seed, "tail": tail.out.value,
            "tier": sim.schedule_cache_tier}


def _merge_report(section, payload):
    """BENCH_warm.json carries both gates; update one section in place."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_warm.json"
    report = {}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except ValueError:
            report = {}
    report[section] = payload
    path.write_text(json.dumps(report, indent=2) + "\n")


def test_disk_hit_compile_speedup(emit, tmp_path):
    prev = schedule_store.cache_dir()
    try:
        # Cold: full levelization + codegen + compile, no disk tier.
        schedule_store.configure(None)
        colds = []
        for _ in range(3):
            clear_schedule_cache()
            sim, _ = _chain(CHAIN_DEPTH)
            t0 = perf_counter()
            compile_kernel(sim)
            colds.append(perf_counter() - t0)
        assert sim.schedule_cache_tier == "cold"
        sim.run(3)
        cold_tail = sim.modules[-1].out.value

        # Seed the store, then measure the two disk-hit flavours.
        schedule_store.configure(tmp_path / "sched")
        clear_schedule_cache()
        compile_kernel(_chain(CHAIN_DEPTH)[0])

        file_hits = []
        for _ in range(5):
            clear_schedule_cache()   # wipes RAM tier + preload mirror
            sim, _ = _chain(CHAIN_DEPTH)
            t0 = perf_counter()
            compile_kernel(sim)
            file_hits.append(perf_counter() - t0)
            assert sim.schedule_cache_tier == "disk"

        t0 = perf_counter()
        preloaded = schedule_store.preload()
        t_preload = perf_counter() - t0
        assert preloaded == 1
        warm_hits = []
        for _ in range(5):
            _SCHEDULE_CACHE.clear()   # keep the preload mirror warm
            sim, _ = _chain(CHAIN_DEPTH)
            t0 = perf_counter()
            compile_kernel(sim)
            warm_hits.append(perf_counter() - t0)
            assert sim.schedule_cache_tier == "disk"
        sim.run(3)
        assert sim.modules[-1].out.value == cold_tail

        t_cold = min(colds)
        t_file = min(file_hits)
        t_warm = min(warm_hits)
        warm_speedup = t_cold / t_warm
        file_speedup = t_cold / t_file
        _merge_report("disk_hit_compile", {
            "chain_depth": CHAIN_DEPTH,
            "cold_compile_ms": round(t_cold * 1e3, 2),
            "preload_ms": round(t_preload * 1e3, 2),
            "disk_hit_preloaded_ms": round(t_warm * 1e3, 2),
            "disk_hit_preloaded_speedup": round(warm_speedup, 1),
            "disk_hit_preloaded_floor": DISK_HIT_FLOOR,
            "disk_hit_file_ms": round(t_file * 1e3, 2),
            "disk_hit_file_speedup": round(file_speedup, 1),
            "disk_hit_file_floor": FILE_HIT_FLOOR,
        })
        emit("warm_disk_hit", "\n".join([
            f"Disk-tier compile speedup ({CHAIN_DEPTH}-module chain)",
            f"  cold levelize+codegen: {t_cold * 1e3:7.1f}ms",
            f"  disk hit (preloaded):  {t_warm * 1e3:7.1f}ms  "
            f"{warm_speedup:5.1f}x  (floor {DISK_HIT_FLOOR}x)",
            f"  disk hit (cold file):  {t_file * 1e3:7.1f}ms  "
            f"{file_speedup:5.1f}x  (floor {FILE_HIT_FLOOR}x)",
            f"  one-time preload:      {t_preload * 1e3:7.1f}ms",
            "[also saved to benchmarks/results/BENCH_warm.json]",
        ]))
        assert warm_speedup >= DISK_HIT_FLOOR, (
            f"preloaded disk-hit speedup regressed: {warm_speedup:.1f}x")
        assert file_speedup >= FILE_HIT_FLOOR, (
            f"cold-file disk-hit speedup regressed: {file_speedup:.1f}x")
    finally:
        clear_schedule_cache()
        schedule_store.configure(str(prev) if prev is not None else None)


def test_warm_pool_campaign_speedup(emit, tmp_path):
    prev = schedule_store.cache_dir()
    cells = [SweepCell(app=f"chain{s % 2}", config="r2", seed=s)
             for s in range(CAMPAIGN_CELLS)]
    try:
        # Cold baseline: no disk tier, a fresh pool per call, every worker
        # levelizes its topologies from scratch (the parent cache is
        # cleared first so forked children cannot inherit a warm one).
        schedule_store.configure(None)
        worker_pool.shutdown_pool()
        colds = []
        for _ in range(3):
            clear_schedule_cache()
            t0 = perf_counter()
            cold_res = run_cells(cells, _chain_cell, jobs=CAMPAIGN_JOBS)
            colds.append(perf_counter() - t0)

        # Warm: persistent store + module-level pool with affinity
        # dispatch. The first call pays worker startup and the compiles;
        # the gated number is the steady state after it.
        cache = tmp_path / "sched"
        schedule_store.configure(cache)
        warms = []
        for i in range(4):
            clear_schedule_cache()
            t0 = perf_counter()
            warm_res = run_cells(cells, _chain_cell, jobs=CAMPAIGN_JOBS,
                                 warm_pool=True, cache_dir=str(cache))
            if i > 0:
                warms.append(perf_counter() - t0)

        # Bit-identity: the warm pool must change nothing but the clock.
        assert ([r["tail"] for r in warm_res]
                == [r["tail"] for r in cold_res])

        t_cold = min(colds)
        t_warm = min(warms)
        speedup = t_cold / t_warm
        stats = worker_pool.pool_stats()
        _merge_report("warm_pool_campaign", {
            "cells": CAMPAIGN_CELLS,
            "jobs": CAMPAIGN_JOBS,
            "cold_pool_s": round(t_cold, 3),
            "warm_pool_s": round(t_warm, 3),
            "speedup": round(speedup, 2),
            "speedup_floor": WARM_POOL_FLOOR,
            "affinity_hit_rate": stats.get("affinity_hit_rate", 0.0),
        })
        emit("warm_pool_campaign", "\n".join([
            f"Warm-pool campaign speedup ({CAMPAIGN_CELLS} cells, "
            f"{CAMPAIGN_JOBS} jobs)",
            f"  cold pools: {t_cold * 1e3:7.0f}ms per campaign",
            f"  warm pool:  {t_warm * 1e3:7.0f}ms per campaign   "
            f"{speedup:.2f}x  (floor {WARM_POOL_FLOOR}x)",
            f"  affinity hit rate: {stats.get('affinity_hit_rate', 0.0):.2f}",
            "[also saved to benchmarks/results/BENCH_warm.json]",
        ]))
        assert speedup >= WARM_POOL_FLOOR, (
            f"warm-pool campaign speedup regressed: {speedup:.2f}x")
    finally:
        worker_pool.shutdown_pool()
        clear_schedule_cache()
        schedule_store.configure(str(prev) if prev is not None else None)
