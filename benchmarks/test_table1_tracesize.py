"""E1b — Table 1: trace sizes and reduction vs the cycle-accurate baseline.

Expected shape (paper): reductions span ~88x (SpamF, the most I/O-bound)
to ~10^7x (SSSP, the most compute-bound), median ~10^3x. Absolute factors
shrink with our scaled-down workloads, but the ordering — SSSP's reduction
the largest, the I/O-bound apps' the smallest — must hold.
"""

from conftest import bench_runs  # noqa: F401  (env convention)

from repro.analysis.metrics import fmt_bytes, fmt_factor, reduction_factor
from repro.analysis.tables import render_table
from repro.apps.registry import APPS
from repro.core import VidiConfig
from repro.harness.experiments import CYCLE_ACCURATE_BYTES_PER_CYCLE
from repro.harness.runner import bench_config, record_run


def measure_tracesizes():
    rows = []
    for key, spec in APPS.items():
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=100)
        cycle_accurate = metrics.cycles * CYCLE_ACCURATE_BYTES_PER_CYCLE
        rows.append((spec, metrics.cycles, metrics.trace_bytes,
                     reduction_factor(cycle_accurate, metrics.trace_bytes)))
    return rows


def test_table1_trace_reduction(benchmark, emit):
    """Regenerate Table 1's TS / Trace-Reduction columns."""
    rows = benchmark.pedantic(measure_tracesizes, iterations=1, rounds=1)
    emit("table1_tracesize", render_table(
        "Table 1 (cont.): trace size and reduction vs cycle-accurate "
        "(measured | paper reduction)",
        ["App", "Cycles", "Vidi trace", "Reduction", "Red.(paper)"],
        [[spec.label, cycles, fmt_bytes(size), fmt_factor(red),
          fmt_factor(spec.paper.reduction)]
         for spec, cycles, size, red in rows]))
    by_key = {spec.key: (cycles, size, red) for spec, cycles, size, red in rows}
    reductions = {k: v[2] for k, v in by_key.items()}
    # SSSP is the most compute-bound: largest reduction, as in the paper.
    assert reductions["sssp"] == max(reductions.values())
    # The I/O-bound pair sits at the bottom of the reduction ranking.
    bottom_two = sorted(reductions, key=reductions.get)[:3]
    assert "spam_filter" in bottom_two
    assert "dram_dma" in bottom_two
    # Every application still reduces by well over an order of magnitude.
    assert all(red > 10 for red in reductions.values())
