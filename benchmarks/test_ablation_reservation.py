"""Ablation A1 — is the eager reservation protocol (§3.1) actually needed?

The monitor's hardest design obligation is completing three handshakes in
the same cycle even when the trace store is saturated; the paper solved it
with eager reservations and proved the result with JasperGold. This
ablation runs identical traffic through a starved store with the
reservation protocol enabled and disabled:

* enabled  — back-pressure slows admission; every event is recorded;
* disabled — transactions flow un-gated, the encoder meets packets it has
  no staging room for, and events are lost (the trace becomes unreplayable).
"""

import random

from repro.analysis.tables import render_table
from repro.channels import Channel, ChannelSink, ChannelSource, Field, PayloadSpec
from repro.core.encoder import TraceEncoder
from repro.core.events import ChannelInfo, ChannelTable
from repro.core.monitor import ChannelMonitor
from repro.core.store import TraceStore
from repro.sim import Simulator

WORD = PayloadSpec([Field("data", 32)])
N_TXNS = 120


def run_starved(eager: bool, seed: int = 9):
    """Push N_TXNS through one monitored channel over a starved store."""
    sim = Simulator()
    up = Channel("up", WORD, direction="in")
    down = Channel("down", WORD, direction="in")
    table = ChannelTable([ChannelInfo(index=0, name="down", direction="in",
                                      content_bytes=4, payload_bits=32)])
    store = TraceStore("store", staging_bytes=64, bandwidth_bytes_per_cycle=0.75)
    encoder = TraceEncoder("enc", table, store)
    encoder.drop_on_overflow = not eager
    source = ChannelSource("src", up)
    rng = random.Random(seed)
    sink = ChannelSink("sink", down, policy=lambda c, n: rng.random() < 0.8)
    monitor = ChannelMonitor("mon", 0, up, down, encoder, "in",
                             eager_reservation=eager)
    for module in (up, down, source, sink, monitor, encoder, store):
        sim.add(module)
    for i in range(N_TXNS):
        source.send({"data": i})
    sim.run_until(lambda: len(sink.received) == N_TXNS,
                  max_cycles=4000 * N_TXNS)
    store.flush()
    recorded_events = encoder.events_recorded - encoder.dropped_events
    return {
        "delivered": len(sink.received),
        "recorded_events": recorded_events,
        "dropped_events": encoder.dropped_events,
        "cycles": sim.cycle,
    }


def test_ablation_eager_reservation(benchmark, emit):
    with_res = benchmark.pedantic(run_starved, args=(True,),
                                  iterations=1, rounds=1)
    without = run_starved(False)
    emit("ablation_reservation", render_table(
        "Ablation A1: eager reservation under a starved trace store",
        ["Configuration", "Delivered", "Events recorded", "Events lost",
         "Cycles"],
        [["with reservation", with_res["delivered"],
          with_res["recorded_events"], with_res["dropped_events"],
          with_res["cycles"]],
         ["without reservation", without["delivered"],
          without["recorded_events"], without["dropped_events"],
          without["cycles"]]]))
    # With the protocol: every event recorded, none lost (at a cycle cost).
    assert with_res["dropped_events"] == 0
    assert with_res["recorded_events"] == 2 * N_TXNS
    # Without it: the application runs at full speed but the record is
    # incomplete — the trace can no longer reproduce the execution.
    assert without["dropped_events"] > 0
    assert without["cycles"] < with_res["cycles"]
