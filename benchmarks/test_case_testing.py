"""E6 — §5.3 testing case study: trace mutation exposes the atop-filter bug.

Expected shape (paper): the buggy filter passes every ordinary execution;
replaying a trace mutated so a W end precedes its AW end deadlocks it
deterministically; the upstream bugfix survives the same mutated replay.
"""

from repro.harness.experiments import render_case_testing, run_case_testing


def test_testing_case_study(benchmark, emit):
    outcome = benchmark.pedantic(run_case_testing, iterations=1, rounds=1)
    emit("case_testing", render_case_testing(outcome))
    assert outcome["normal_run_ok"]
    assert outcome["mutated_deadlocks_buggy"]
    assert outcome["buggy_filter_wedged"]
    assert outcome["mutated_passes_fixed"]
