"""E4 — §5.4 effectiveness: divergences across record and replay.

Expected shape (paper): transaction counts and happens-before orderings
are reproduced exactly for every application; exactly one application
(DRAM DMA, which polls) shows rare content divergences (~1e-6 per
transaction at the paper's production scale; higher here because our
scaled-down runs have far fewer transactions per poll), and the §3.6
interrupt patch eliminates them entirely.
"""

from conftest import bench_runs

from repro.harness.experiments import render_divergence, run_divergence


def test_divergence_all_apps(benchmark, emit):
    rows = benchmark.pedantic(
        run_divergence, kwargs={"runs": bench_runs(2)},
        iterations=1, rounds=1)
    emit("divergence", render_divergence(rows))
    by_label = {row.label: row for row in rows}
    # Counts and orderings never diverge under transaction determinism.
    for row in rows:
        assert row.count == 0, row.label
        assert row.ordering == 0, row.label
    # Only the polling DRAM DMA shows content divergences...
    for label, row in by_label.items():
        if label in ("DMA",):
            assert row.content > 0, "polling divergence did not reproduce"
        else:
            assert row.content == 0, label
    # ...and they are rare relative to the transaction volume.
    assert by_label["DMA"].rate < 0.05
    # The interrupt patch removes them completely (§3.6).
    assert by_label["DMA(patched)"].content == 0
