"""Trace-service bench — daemon batch throughput + ingest overhead.

Not a paper artefact: gates the two perf claims the fleet-scale daemon
makes (ROADMAP item 2), in ``BENCH_service.json``:

* **Daemon batch speedup.** A 32-job mixed batch (record sweeps, replays
  of a shared trace, small fault campaigns) submitted to an embedded
  daemon and executed over the warm worker pool, versus the same 32 jobs
  as sequential CLI invocations — each paying interpreter start-up,
  ``repro`` import and kernel compilation from scratch. The daemon is
  resident: a short warm-up batch (one job of each kind, outside the
  timer) stands in for the fleet steady state, where thousands of queued
  jobs share one set of live workers and warm compiled kernels instead
  of recompiling per CLI call. The daemon must win by ≥2×. Record jobs
  cross-check digests against the CLI's output files: a speedup bought
  with different bytes is a failure, not a win.

* **Ingest overhead.** A flight recording streamed live into the daemon
  (`FlightStreamer` observer + background sender) versus the same
  recording standalone. Streaming must stay within the flight recorder's
  own ≤1.15× record-overhead budget — the observer only appends bytes to
  a buffer; all network latency lands on the sender thread.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path
from time import perf_counter

from conftest import RESULTS_DIR

from repro.harness import worker_pool

BATCH_SPEEDUP_FLOOR = 2.0
INGEST_OVERHEAD_CEILING = 1.15
N_RECORD, N_REPLAY, N_CAMPAIGN = 16, 8, 8    # the 32-job mixed batch
DAEMON_JOBS = 4

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _merge_report(section, payload):
    """BENCH_service.json carries both gates; update one section in place."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service.json"
    report = {}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except ValueError:
            report = {}
    report[section] = payload
    path.write_text(json.dumps(report, indent=2) + "\n")


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _run_cli(args, env):
    proc = subprocess.run([sys.executable, "-m", "repro.harness"] + args,
                          env=env, capture_output=True)
    assert proc.returncode == 0, (
        f"CLI baseline failed: {args}\n{proc.stderr.decode()}")


def test_daemon_batch_beats_sequential_cli(emit, tmp_path):
    from repro.service.client import ServiceClient
    from repro.service.server import TraceService

    env = _cli_env()
    cli_dir = tmp_path / "cli"
    cli_dir.mkdir()

    # Shared replay input, recorded once up front (outside both timers).
    shared_trace = tmp_path / "shared.trace"
    _run_cli(["record", "sha256", "-o", str(shared_trace), "--seed", "99",
              "--scheduler", "compiled"], env)

    # Campaigns host the crash trials on sha256 (no checkpoint support →
    # the crash legs resolve cheaply) so the batch stays a *mix* instead
    # of 8 jobs of multi-second checkpointed dram_dma shard replays that
    # would drown the per-invocation costs this bench is about.
    campaign_cli = ["--faults", "2", "--crash-app", "sha256"]
    campaign_params = {"n_faults": 2, "crash_app": "sha256"}

    # -- baseline: 32 sequential CLI invocations --------------------------
    t0 = perf_counter()
    for i in range(N_RECORD):
        _run_cli(["record", "sha256", "-o", str(cli_dir / f"r{i}.trace"),
                  "--seed", str(i), "--scheduler", "compiled"], env)
    for _ in range(N_REPLAY):
        _run_cli(["replay", "sha256", str(shared_trace),
                  "--scheduler", "compiled"], env)
    for i in range(N_CAMPAIGN):
        _run_cli(["campaign", "--seed", str(i)] + campaign_cli, env)
    t_cli = perf_counter() - t0
    cli_shas = {i: hashlib.sha256(
        (cli_dir / f"r{i}.trace").read_bytes()).hexdigest()
        for i in range(N_RECORD)}

    # -- daemon: the same 32 jobs through the queue + warm pool -----------
    worker_pool.shutdown_pool()
    service = TraceService(tmp_path / "svc", jobs=DAEMON_JOBS,
                           cache_dir=str(tmp_path / "sched")).run_in_thread()
    try:
        client = ServiceClient(data_dir=service.data_dir)
        # Warm-up: one job of each kind, outside the timer. The daemon is
        # long-lived — in steady state its workers are already imported
        # and its kernels already compiled; the sequential CLI rebuilds
        # that state on every invocation by construction.
        for job_id in [
            client.submit("record", {"app": "sha256", "seed": 999,
                                     "scheduler": "compiled"}),
            client.submit("replay", {"app": "sha256",
                                     "trace_path": str(shared_trace),
                                     "scheduler": "compiled"}),
            client.submit("campaign", dict(campaign_params, seed=999)),
        ]:
            client.wait(job_id, timeout=600.0)

        t0 = perf_counter()
        ids = []
        for i in range(N_RECORD):
            ids.append(("record", i, client.submit(
                "record", {"app": "sha256", "seed": i,
                           "scheduler": "compiled"})))
        for _ in range(N_REPLAY):
            ids.append(("replay", None, client.submit(
                "replay", {"app": "sha256", "trace_path": str(shared_trace),
                           "scheduler": "compiled"})))
        for i in range(N_CAMPAIGN):
            ids.append(("campaign", i, client.submit(
                "campaign", dict(campaign_params, seed=i))))
        details = {job_id: client.wait(job_id, timeout=600.0)
                   for _, _, job_id in ids}
        t_daemon = perf_counter() - t0

        # Bit-identity: daemon record jobs == CLI record outputs.
        for kind, i, job_id in ids:
            result = details[job_id]["result"]
            if kind == "record":
                assert result["trace_sha256"] == cli_shas[i], (
                    f"daemon record seed={i} diverged from the CLI blob")
            elif kind == "replay":
                assert result["clean"], result["summary"]
            else:
                assert result["silent_accepts"] == 0
    finally:
        service.shutdown()

    speedup = t_cli / t_daemon
    _merge_report("daemon_batch", {
        "jobs": N_RECORD + N_REPLAY + N_CAMPAIGN,
        "mix": {"record": N_RECORD, "replay": N_REPLAY,
                "campaign": N_CAMPAIGN},
        "daemon_slots": DAEMON_JOBS,
        "sequential_cli_s": round(t_cli, 2),
        "daemon_s": round(t_daemon, 2),
        "speedup": round(speedup, 2),
        "speedup_floor": BATCH_SPEEDUP_FLOOR,
    })
    emit("service_daemon_batch", "\n".join([
        f"Daemon batch speedup ({N_RECORD + N_REPLAY + N_CAMPAIGN} mixed "
        f"jobs, {DAEMON_JOBS} slots)",
        f"  sequential CLI: {t_cli:7.1f}s",
        f"  daemon + pool:  {t_daemon:7.1f}s   {speedup:.2f}x  "
        f"(floor {BATCH_SPEEDUP_FLOOR}x)",
        "[also saved to benchmarks/results/BENCH_service.json]",
    ]))
    assert speedup >= BATCH_SPEEDUP_FLOOR, (
        f"daemon batch speedup regressed: {speedup:.2f}x")


def test_ingest_overhead_within_flight_budget(emit, tmp_path):
    from repro.apps.registry import get_app
    from repro.core import TraceFile, VidiConfig
    from repro.harness.runner import bench_config, record_run
    from repro.service.client import FlightStreamer, ServiceClient
    from repro.service.server import TraceService

    spec = get_app("dram_dma")
    config = bench_config(VidiConfig.r2, flight_recorder=True)

    def _plain():
        t0 = perf_counter()
        record_run(spec, config, seed=5)
        return perf_counter() - t0

    plain = min(_plain() for _ in range(3))

    service = TraceService(tmp_path / "svc", jobs=1).run_in_thread()
    try:
        client = ServiceClient(data_dir=service.data_dir)
        streamed = []
        journal = None
        for i in range(3):
            streamer = FlightStreamer(client, f"bench-{i}")
            t0 = perf_counter()
            record_run(spec, config, seed=5, before_run=streamer.attach)
            streamed.append(perf_counter() - t0)
            journal = streamer.detach()["journal"]
        t_streamed = min(streamed)
        # The streamed journal must be a loadable v3 container — overhead
        # numbers for a broken stream would be meaningless.
        assert TraceFile.load(journal, salvage=True).packet_count > 0
    finally:
        service.shutdown()

    ratio = t_streamed / plain
    _merge_report("ingest_overhead", {
        "app": "dram_dma",
        "plain_record_s": round(plain, 3),
        "streamed_record_s": round(t_streamed, 3),
        "overhead_ratio": round(ratio, 3),
        "overhead_ceiling": INGEST_OVERHEAD_CEILING,
    })
    emit("service_ingest_overhead", "\n".join([
        "Live-ingest record overhead (dram_dma, flight recorder)",
        f"  standalone: {plain * 1e3:7.0f}ms",
        f"  streaming:  {t_streamed * 1e3:7.0f}ms   {ratio:.3f}x  "
        f"(ceiling {INGEST_OVERHEAD_CEILING}x)",
        "[also saved to benchmarks/results/BENCH_service.json]",
    ]))
    assert ratio <= INGEST_OVERHEAD_CEILING, (
        f"live ingest overhead regressed: {ratio:.3f}x")
