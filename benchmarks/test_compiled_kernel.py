"""Infrastructure bench — compiled-kernel throughput over the event kernel.

Not a paper artefact: documents the payoff of the levelized,
code-generated scheduler (``repro.sim.compile``) on the configuration
that matters — a full five-interface deployment doing real work. The
pipeline is record (R2) **plus** replay (R3) of the recorded trace,
i.e. the paper's end-to-end record/replay loop, and each leg carries
its own speedup floor:

* **record leg** — R2 with the bench config, exactly as a campaign
  records it;
* **replay leg** — R3 stepping with ``time_warp=False`` on *both*
  kernels. Warp skips quiescent gaps wholesale, so a warped replay
  executes only a few hundred busy steps and measures the warp
  machinery (benchmarked separately in ``BENCH_replay.json``), not the
  per-cycle kernel. Disabling it makes the leg a pure stepping-rate
  comparison — the regime the replay-datapath inlining targets.

Results land in ``benchmarks/results/BENCH_compiled.json``; the floors
are part of ``make check``.

The three-way differential harness (``tests/test_scheduler_equivalence.py``)
proves the kernels bit-identical, so the speedup is free; this bench also
cross-checks that the two recorded traces match byte for byte.
"""

import json
from time import perf_counter

import pytest
from conftest import RESULTS_DIR

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, trace_interfaces
from repro.platform import F1Deployment

ROUNDS = 3            # best-of-N to shed host-scheduler noise
DEPLOY_SCALE = 4.0    # long enough that stepping dominates construction
PIPELINE_FLOOR = 1.5  # record + replay, end to end
RECORD_LEG_FLOOR = 1.5
REPLAY_LEG_FLOOR = 1.4


def _measure_scheduler(scheduler):
    """Best-of-N wall-clock for each leg (sha256, R2 record / R3 replay).

    Construction and elaboration — including the compiled kernel's one-off
    levelize+codegen, which ``_step_callable`` triggers — happen outside
    the timed regions: the bench measures per-cycle stepping, not setup.
    Each leg takes its own best across rounds so one noisy leg cannot
    poison an otherwise clean round.
    """
    spec = get_app("sha256")
    acc_factory, host_factory = spec.make()
    best_rec, best_rep, stats = float("inf"), float("inf"), {}
    trace = None
    for _ in range(ROUNDS):
        recording = F1Deployment("cmp_rec", acc_factory,
                                 bench_config(VidiConfig.r2), seed=1,
                                 scheduler=scheduler)
        result = {}
        recording.cpu.add_thread(
            host_factory(result, seed=1, scale=DEPLOY_SCALE))
        recording.sim._step_callable()   # pre-build the kernel
        t0 = perf_counter()
        record_cycles = recording.run_to_completion()
        best_rec = min(best_rec, perf_counter() - t0)
        spec.check(result)
        trace = recording.recorded_trace({"app": "sha256", "seed": 1})
        stats = {
            "record_cycles": record_cycles,
            "trace_bytes": trace.to_bytes(),
            "compile_s": recording.sim.compile_s,
            "rank_count": recording.sim.rank_count,
            "demoted_sccs": recording.sim.demoted_sccs,
        }
    for _ in range(ROUNDS):
        acc2_factory, _host = spec.make()
        replaying = F1Deployment(
            "cmp_rep", acc2_factory,
            VidiConfig.r3(interfaces=trace_interfaces(trace)),
            replay_trace=trace, scheduler=scheduler,
            time_warp=False)             # pure stepping rate (see module doc)
        replaying.sim._step_callable()   # pre-build the kernel
        t0 = perf_counter()
        replay_cycles = replaying.run_replay()
        best_rep = min(best_rep, perf_counter() - t0)
        stats["replay_cycles"] = replay_cycles
        stats["compile_s"] += replaying.sim.compile_s
    return best_rec, best_rep, stats


@pytest.fixture(scope="module")
def legs():
    ev_rec, ev_rep, event_stats = _measure_scheduler("event")
    cp_rec, cp_rep, compiled_stats = _measure_scheduler("compiled")
    # Same design, same seed: identical cycle counts and trace bytes (the
    # differential tests check far more than this).
    assert compiled_stats["record_cycles"] == event_stats["record_cycles"]
    assert compiled_stats["replay_cycles"] == event_stats["replay_cycles"]
    assert compiled_stats["trace_bytes"] == event_stats["trace_bytes"]
    return {
        "ev_rec": ev_rec, "ev_rep": ev_rep, "event_stats": event_stats,
        "cp_rec": cp_rec, "cp_rep": cp_rep, "compiled_stats": compiled_stats,
    }


def test_compiled_kernel_report(legs, emit):
    """Write BENCH_compiled.json and enforce the end-to-end pipeline floor."""
    event_stats, compiled_stats = legs["event_stats"], legs["compiled_stats"]
    ev_rec, ev_rep = legs["ev_rec"], legs["ev_rep"]
    cp_rec, cp_rep = legs["cp_rec"], legs["cp_rep"]

    total_cycles = (event_stats["record_cycles"]
                    + event_stats["replay_cycles"])
    event_cps = total_cycles / (ev_rec + ev_rep)
    compiled_cps = total_cycles / (cp_rec + cp_rep)
    speedup = compiled_cps / event_cps
    record_leg = ev_rec / cp_rec
    replay_leg = ev_rep / cp_rep
    report = {
        "full_deployment_record_replay": {
            "app": "sha256",
            "config": "r2(five-interface) + r3 replay (time_warp off)",
            "record_cycles": event_stats["record_cycles"],
            "replay_cycles": event_stats["replay_cycles"],
            "event_cycles_per_sec": round(event_cps),
            "compiled_cycles_per_sec": round(compiled_cps),
            "speedup": round(speedup, 2),
            "speedup_floor": PIPELINE_FLOOR,
            "record_leg_speedup": round(record_leg, 2),
            "record_leg_floor": RECORD_LEG_FLOOR,
            "replay_leg_speedup": round(replay_leg, 2),
            "replay_leg_floor": REPLAY_LEG_FLOOR,
        },
        "compiled_schedule": {
            "compile_s": round(compiled_stats["compile_s"], 4),
            "rank_count": compiled_stats["rank_count"],
            "demoted_sccs": compiled_stats["demoted_sccs"],
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_compiled.json").write_text(
        json.dumps(report, indent=2) + "\n")

    emit("compiled_kernel", "\n".join([
        f"Compiled-kernel throughput (cycles/second, best of {ROUNDS} "
        "per leg, record+replay)",
        f"  full R2+R3 pipeline: event {event_cps:>12,.0f}   "
        f"compiled {compiled_cps:>12,.0f}   speedup {speedup:.2f}x",
        f"  record leg (R2):          {record_leg:.2f}x  "
        f"(floor {RECORD_LEG_FLOOR}x)",
        f"  replay leg (R3, no warp): {replay_leg:.2f}x  "
        f"(floor {REPLAY_LEG_FLOOR}x)",
        f"  schedule: {compiled_stats['rank_count']} rank(s), "
        f"{compiled_stats['demoted_sccs']} demoted SCC(s), "
        f"compile {compiled_stats['compile_s'] * 1e3:.1f} ms",
        "[also saved to benchmarks/results/BENCH_compiled.json]",
    ]))

    assert speedup >= PIPELINE_FLOOR, (
        f"compiled kernel pipeline speedup regressed: {speedup:.2f}x")


def test_compiled_record_leg(legs):
    """R2 recording alone must clear its own floor — a campaign's steady
    state is back-to-back record runs, so the record leg cannot hide
    behind a fast replay leg (or vice versa)."""
    record_leg = legs["ev_rec"] / legs["cp_rec"]
    assert record_leg >= RECORD_LEG_FLOOR, (
        f"record-leg speedup regressed: {record_leg:.2f}x")


def test_compiled_replay_leg(legs):
    """R3 stepping (warp off) must clear its own floor. The inlined
    replay datapath (``ChannelReplayer.seq_inline_source``) and the
    delta-need vector-clock walk pay off exactly here, where every
    trace cycle executes."""
    replay_leg = legs["ev_rep"] / legs["cp_rep"]
    assert replay_leg >= REPLAY_LEG_FLOOR, (
        f"replay-leg speedup regressed: {replay_leg:.2f}x")
