"""Infrastructure bench — compiled-kernel throughput over the event kernel.

Not a paper artefact: documents the payoff of the levelized,
code-generated scheduler (``repro.sim.compile``) on the configuration
that matters — a full five-interface deployment doing real work. The
measured pipeline is record (R2) **plus** replay (R3) of the recorded
trace, i.e. the paper's end-to-end record/replay loop, under both the
event kernel and the compiled kernel. Results land in
``benchmarks/results/BENCH_compiled.json``; the ≥1.5× speedup floor is
part of ``make check``.

The three-way differential harness (``tests/test_scheduler_equivalence.py``)
proves the kernels bit-identical, so the speedup is free; this bench also
cross-checks that the two recorded traces match byte for byte.
"""

import json
from time import perf_counter

from conftest import RESULTS_DIR

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, trace_interfaces
from repro.platform import F1Deployment

ROUNDS = 3          # best-of-N to shed host-scheduler noise
DEPLOY_SCALE = 4.0  # long enough that stepping dominates construction
SPEEDUP_FLOOR = 1.5


def _record_replay_times(scheduler):
    """Best-of-N wall-clock for each leg of record+replay (sha256, R2/R3).

    Construction and elaboration — including the compiled kernel's one-off
    levelize+codegen, which ``_step_callable`` triggers — happen outside
    the timed regions: the bench measures per-cycle stepping, not setup.
    Each leg takes its own best across rounds so one noisy leg cannot
    poison an otherwise clean round.
    """
    spec = get_app("sha256")
    acc_factory, host_factory = spec.make()
    best_rec, best_rep, stats = float("inf"), float("inf"), {}
    for _ in range(ROUNDS):
        recording = F1Deployment("cmp_rec", acc_factory,
                                 bench_config(VidiConfig.r2), seed=1,
                                 scheduler=scheduler)
        result = {}
        recording.cpu.add_thread(
            host_factory(result, seed=1, scale=DEPLOY_SCALE))
        recording.sim._step_callable()   # pre-build the kernel
        t0 = perf_counter()
        record_cycles = recording.run_to_completion()
        best_rec = min(best_rec, perf_counter() - t0)
        spec.check(result)
        trace = recording.recorded_trace({"app": "sha256", "seed": 1})

        acc2_factory, _host = spec.make()
        replaying = F1Deployment(
            "cmp_rep", acc2_factory,
            VidiConfig.r3(interfaces=trace_interfaces(trace)),
            replay_trace=trace, scheduler=scheduler)
        replaying.sim._step_callable()   # pre-build the kernel
        t0 = perf_counter()
        replay_cycles = replaying.run_replay()
        best_rep = min(best_rep, perf_counter() - t0)

        stats = {
            "record_cycles": record_cycles,
            "replay_cycles": replay_cycles,
            "trace_bytes": trace.to_bytes(),
            "compile_s": recording.sim.compile_s + replaying.sim.compile_s,
            "rank_count": recording.sim.rank_count,
            "demoted_sccs": recording.sim.demoted_sccs,
        }
    return best_rec, best_rep, stats


def test_compiled_kernel_throughput(emit):
    ev_rec, ev_rep, event_stats = _record_replay_times("event")
    cp_rec, cp_rep, compiled_stats = _record_replay_times("compiled")

    # Same design, same seed: identical cycle counts and trace bytes (the
    # differential tests check far more than this).
    assert compiled_stats["record_cycles"] == event_stats["record_cycles"]
    assert compiled_stats["replay_cycles"] == event_stats["replay_cycles"]
    assert compiled_stats["trace_bytes"] == event_stats["trace_bytes"]

    total_cycles = (event_stats["record_cycles"]
                    + event_stats["replay_cycles"])
    event_cps = total_cycles / (ev_rec + ev_rep)
    compiled_cps = total_cycles / (cp_rec + cp_rep)
    speedup = compiled_cps / event_cps
    report = {
        "full_deployment_record_replay": {
            "app": "sha256",
            "config": "r2(five-interface) + r3 replay",
            "record_cycles": event_stats["record_cycles"],
            "replay_cycles": event_stats["replay_cycles"],
            "event_cycles_per_sec": round(event_cps),
            "compiled_cycles_per_sec": round(compiled_cps),
            "speedup": round(speedup, 2),
            "record_leg_speedup": round(ev_rec / cp_rec, 2),
            "replay_leg_speedup": round(ev_rep / cp_rep, 2),
            "speedup_floor": SPEEDUP_FLOOR,
        },
        "compiled_schedule": {
            "compile_s": round(compiled_stats["compile_s"], 4),
            "rank_count": compiled_stats["rank_count"],
            "demoted_sccs": compiled_stats["demoted_sccs"],
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_compiled.json").write_text(
        json.dumps(report, indent=2) + "\n")

    emit("compiled_kernel", "\n".join([
        f"Compiled-kernel throughput (cycles/second, best of {ROUNDS} "
        "per leg, record+replay)",
        f"  full R2+R3 pipeline: event {event_cps:>12,.0f}   "
        f"compiled {compiled_cps:>12,.0f}   speedup {speedup:.2f}x",
        f"  per leg: record {ev_rec / cp_rec:.2f}x   "
        f"replay {ev_rep / cp_rep:.2f}x",
        f"  schedule: {compiled_stats['rank_count']} rank(s), "
        f"{compiled_stats['demoted_sccs']} demoted SCC(s), "
        f"compile {compiled_stats['compile_s'] * 1e3:.1f} ms",
        "[also saved to benchmarks/results/BENCH_compiled.json]",
    ]))

    # The acceptance bar for the compiled kernel: at least 1.5x over the
    # event kernel on the full record+replay pipeline.
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled kernel speedup regressed: {speedup:.2f}x")
