"""E3 — Fig. 7: resource overhead vs monitored interface combinations.

Expected shape (paper): eleven combinations from a single AXI-Lite bus
(136 monitored bits) to all five interfaces (3056 bits); LUT/FF/BRAM grow
roughly linearly with the total monitored width.
"""

from repro.harness.experiments import render_fig7, run_fig7


def _linear_fit_r2(xs, ys):
    """Coefficient of determination of the least-squares line."""
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    if sxx == 0:
        return 0.0
    slope = sxy / sxx
    intercept = my - slope * mx
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - my) ** 2 for y in ys)
    return 1.0 - ss_res / ss_tot if ss_tot else 1.0


def test_fig7_resource_scaling(benchmark, emit):
    points = benchmark.pedantic(run_fig7, iterations=1, rounds=1)
    emit("fig7", render_fig7(points))
    assert len(points) == 11
    widths = [p.monitored_bits for p in points]
    assert min(widths) == 136 and max(widths) == 3056
    # Roughly linear scaling in monitored width, as the paper concludes.
    for metric in ("lut_pct", "ff_pct", "bram_pct"):
        values = [getattr(p, metric) for p in points]
        assert _linear_fit_r2(widths, values) > 0.97, metric
    # Monotone: monitoring more width never costs less.
    ordered = sorted(points, key=lambda p: p.monitored_bits)
    for a, b in zip(ordered, ordered[1:]):
        assert b.lut_pct >= a.lut_pct
        assert b.ff_pct >= a.ff_pct
        assert b.bram_pct >= a.bram_pct
