"""Infrastructure bench — batched campaign throughput over scalar runs.

Not a paper artefact: documents the payoff of the numpy batch kernel
(``repro.sim.batch``) on the workload it was built for — a sweep of
N structurally-identical record runs differing only in their seed,
which is exactly the shape of a fault campaign or a Table-1 sweep.
The scalar baseline is N back-to-back :func:`record_run` calls on the
compiled kernel (the previous best); the batched side is one
:func:`record_batch` call packing all N simulators behind a single
:class:`~repro.sim.batch.BatchKernel`.

The equivalence suite (``tests/test_batch_kernel.py``) proves the two
paths bit-identical; this bench additionally cross-checks the recorded
trace bytes so the speedup is never bought with divergence. Results
land in ``benchmarks/results/BENCH_batch.json``; the ≥4× floor at
N=16 is part of ``make check``.
"""

import json
from time import perf_counter

from conftest import RESULTS_DIR

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.batch_runner import record_batch
from repro.harness.runner import bench_config, record_run

BATCH_N = 16        # the gated batch width (DEFAULT_BATCH_SIZE)
DEPLOY_SCALE = 4.0  # long enough that stepping dominates construction
SPEEDUP_FLOOR = 4.0


def test_batch_kernel_throughput(emit):
    spec = get_app("mobilenet")
    config = bench_config(VidiConfig.r2)
    seeds = list(range(BATCH_N))

    t0 = perf_counter()
    scalar_metrics = [
        record_run(spec, config, seed, scale=DEPLOY_SCALE,
                   scheduler="compiled")
        for seed in seeds
    ]
    t_scalar = perf_counter() - t0

    t0 = perf_counter()
    batch_metrics = record_batch(spec, config, seeds, scale=DEPLOY_SCALE)
    t_batch = perf_counter() - t0

    # The speedup must never be bought with divergence: same cycles, same
    # trace bytes, instance by instance.
    for scalar, batched in zip(scalar_metrics, batch_metrics):
        assert batched.cycles == scalar.cycles
        assert (batched.result["trace"].to_bytes()
                == scalar.result["trace"].to_bytes())

    total_cycles = sum(m.cycles for m in scalar_metrics)
    speedup = t_scalar / t_batch
    report = {
        "batched_record_campaign": {
            "app": "mobilenet",
            "config": "r2(five-interface)",
            "batch_size": BATCH_N,
            "cycles_per_instance": total_cycles // BATCH_N,
            "scalar_s": round(t_scalar, 3),
            "batch_s": round(t_batch, 3),
            "scalar_cycles_per_sec": round(total_cycles / t_scalar),
            "batch_cycles_per_sec": round(total_cycles / t_batch),
            "speedup": round(speedup, 2),
            "speedup_floor": SPEEDUP_FLOOR,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_batch.json").write_text(
        json.dumps(report, indent=2) + "\n")

    emit("batch_kernel", "\n".join([
        f"Batched campaign throughput (N={BATCH_N} record runs, mobilenet, "
        f"scale {DEPLOY_SCALE})",
        f"  scalar compiled: {t_scalar:6.2f}s  "
        f"({total_cycles / t_scalar:>12,.0f} cycles/s)",
        f"  batched kernel:  {t_batch:6.2f}s  "
        f"({total_cycles / t_batch:>12,.0f} cycles/s)",
        f"  speedup {speedup:.2f}x  (floor {SPEEDUP_FLOOR}x)",
        "[also saved to benchmarks/results/BENCH_batch.json]",
    ]))

    # The acceptance bar for the batch kernel: at least 4x over N scalar
    # compiled-kernel runs at the default batch width.
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch kernel speedup regressed: {speedup:.2f}x")
