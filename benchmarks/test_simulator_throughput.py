"""Infrastructure bench — simulation-kernel throughput.

Not a paper artefact: documents the substrate's speed so absolute
runtimes elsewhere are interpretable. Measures cycles/second for (a) a
minimal design and (b) a full five-interface deployment with Vidi
recording — the configuration every Table-1 experiment runs in.
"""

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config
from repro.platform import F1Deployment
from repro.sim import Module, Simulator

CYCLES = 3_000


def test_minimal_design_throughput(benchmark):
    class Counter(Module):
        has_comb = False

        def __init__(self):
            super().__init__("counter")
            self.count = self.signal("count", width=32)

        def seq(self):
            self.count.set_next(self.count.value + 1)

    sim = Simulator()
    counter = Counter()
    sim.add(counter)
    sim.elaborate()

    benchmark(sim.run, CYCLES)
    assert counter.count.value > 0


def test_full_deployment_recording_throughput(benchmark):
    spec = get_app("sha256")
    acc_factory, host_factory = spec.make()

    def run_once():
        deployment = F1Deployment("thr", acc_factory,
                                  bench_config(VidiConfig.r2), seed=1)
        result = {}
        deployment.cpu.add_thread(host_factory(result, seed=1, scale=0.5))
        deployment.run_to_completion()
        return deployment.sim.cycle

    cycles = benchmark(run_once)
    assert cycles > 500
