"""Infrastructure bench — simulation-kernel throughput.

Not a paper artefact: documents the substrate's speed so absolute
runtimes elsewhere are interpretable. Measures cycles/second for (a) a
minimal design and (b) a full five-interface deployment with Vidi
recording — the configuration every Table-1 experiment runs in — under
both the event-driven scheduler and the legacy fixpoint kernel, and
records the comparison in ``benchmarks/results/BENCH_kernel.json``.

The event/fixpoint speedup on the full deployment is the headline number
of the sensitivity-scheduling work; the differential harness
(``tests/test_scheduler_equivalence.py``) proves the two kernels produce
bit-identical results, so the speedup is free.
"""

import json
from time import perf_counter

from conftest import RESULTS_DIR

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config
from repro.platform import F1Deployment
from repro.sim import Module, Simulator

CYCLES = 3_000
ROUNDS = 3          # best-of-N to shed host-scheduler noise
DEPLOY_SCALE = 4.0  # long enough that stepping dominates construction


class _Counter(Module):
    has_comb = False

    def __init__(self):
        super().__init__("counter")
        self.count = self.signal("count", width=32)

    def seq(self):
        self.count.set_next(self.count.value + 1)


def _minimal_cps(scheduler):
    best = 0.0
    for _ in range(ROUNDS):
        sim = Simulator(scheduler=scheduler)
        counter = _Counter()
        sim.add(counter)
        sim.elaborate()
        t0 = perf_counter()
        sim.run(CYCLES)
        best = max(best, CYCLES / (perf_counter() - t0))
        assert counter.count.value == CYCLES
    return best


def _deployment_cps(scheduler):
    """Best-of-N cycles/sec for a full five-interface R2 recording run.

    Construction happens outside the timed region: the bench measures
    kernel stepping, not Python object creation.
    """
    spec = get_app("sha256")
    acc_factory, host_factory = spec.make()
    best, cycles = 0.0, 0
    for _ in range(ROUNDS):
        deployment = F1Deployment("thr", acc_factory,
                                  bench_config(VidiConfig.r2), seed=1,
                                  scheduler=scheduler)
        result = {}
        deployment.cpu.add_thread(
            host_factory(result, seed=1, scale=DEPLOY_SCALE))
        t0 = perf_counter()
        cycles = deployment.run_to_completion()
        best = max(best, cycles / (perf_counter() - t0))
        spec.check(result)
    return best, cycles


def test_kernel_throughput(emit):
    min_event = _minimal_cps("event")
    min_fix = _minimal_cps("fixpoint")
    dep_event, cycles_event = _deployment_cps("event")
    dep_fix, cycles_fix = _deployment_cps("fixpoint")

    # Same design, same seed: the schedulers must agree on the cycle count
    # (the differential tests check far more than this).
    assert cycles_event == cycles_fix

    speedup = dep_event / dep_fix
    report = {
        "minimal": {
            "cycles": CYCLES,
            "event_cycles_per_sec": round(min_event),
            "fixpoint_cycles_per_sec": round(min_fix),
        },
        "full_deployment_recording": {
            "app": "sha256",
            "config": "r2(five-interface)",
            "cycles": cycles_event,
            "event_cycles_per_sec": round(dep_event),
            "fixpoint_cycles_per_sec": round(dep_fix),
            "speedup": round(speedup, 2),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernel.json").write_text(
        json.dumps(report, indent=2) + "\n")

    emit("kernel_throughput", "\n".join([
        f"Kernel throughput (cycles/second, best of {ROUNDS})",
        f"  minimal design:      event {min_event:>12,.0f}   "
        f"fixpoint {min_fix:>12,.0f}",
        f"  full R2 deployment:  event {dep_event:>12,.0f}   "
        f"fixpoint {dep_fix:>12,.0f}   speedup {speedup:.2f}x",
        "[also saved to benchmarks/results/BENCH_kernel.json]",
    ]))

    # The acceptance bar for the event kernel: at least 2x on the full
    # five-interface recording deployment.
    assert speedup >= 2.0, f"event kernel speedup regressed: {speedup:.2f}x"
