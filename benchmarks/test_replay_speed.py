"""E8b — replay speed: hardware-rate replay vs the recorded execution.

§5.2 notes that simulation-based replay "could not finish within a
reasonable time", which is why Vidi replays on hardware. In the
reproduction both record and replay run on the same simulated hardware,
so the comparable metric is cycle count: replay needs no host think time,
no polling intervals and no PCIe pacing, so it completes in at most — and
usually far fewer than — the recorded cycles, while preserving every
happens-before relation.
"""

from repro.analysis.tables import render_table
from repro.apps.registry import APPS, get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, record_run, replay_run


def measure():
    rows = []
    for key, spec in APPS.items():
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=100,
                             scale=0.6)
        replay = replay_run(spec, metrics.result["trace"])
        rows.append((spec.label, metrics.cycles, replay.cycles,
                     metrics.cycles / max(replay.cycles, 1)))
    return rows


def test_replay_never_slower_than_record(benchmark, emit):
    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    emit("replay_speed", render_table(
        "Replay speed: recorded vs replayed cycles",
        ["App", "Recorded", "Replayed", "Speedup"],
        [[label, rec, rep, f"{speedup:.2f}x"]
         for label, rec, rep, speedup in rows]))
    for label, rec, rep, speedup in rows:
        assert rep <= rec, label
    # The I/O-bound applications gain the most: their recordings are full
    # of host think time and PCIe pacing that replay does not reproduce.
    by_label = {label: speedup for label, _r, _p, speedup in rows}
    assert by_label["DMA"] > 1.3
    speedups = [s for *_x, s in rows]
    assert sum(speedups) / len(speedups) > 1.05
