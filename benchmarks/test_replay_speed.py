"""E8b — replay speed: hardware-rate replay vs the recorded execution.

§5.2 notes that simulation-based replay "could not finish within a
reasonable time", which is why Vidi replays on hardware. In the
reproduction both record and replay run on the same simulated hardware,
so the comparable metric is cycle count: replay needs no host think time,
no polling intervals and no PCIe pacing, so it completes in at most — and
usually far fewer than — the recorded cycles, while preserving every
happens-before relation.
"""

import json
from time import perf_counter

from conftest import RESULTS_DIR

from repro.analysis.tables import render_table
from repro.apps.registry import APPS, get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, record_run, replay_run
from repro.harness.sharded_replay import record_with_checkpoints, replay_sharded


def measure():
    rows = []
    for key, spec in APPS.items():
        metrics = record_run(spec, bench_config(VidiConfig.r2), seed=100,
                             scale=0.6)
        replay = replay_run(spec, metrics.result["trace"])
        rows.append((spec.label, metrics.cycles, replay.cycles,
                     metrics.cycles / max(replay.cycles, 1)))
    return rows


def test_replay_never_slower_than_record(benchmark, emit):
    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    emit("replay_speed", render_table(
        "Replay speed: recorded vs replayed cycles",
        ["App", "Recorded", "Replayed", "Speedup"],
        [[label, rec, rep, f"{speedup:.2f}x"]
         for label, rec, rep, speedup in rows]))
    for label, rec, rep, speedup in rows:
        assert rep <= rec, label
    # The I/O-bound applications gain the most: their recordings are full
    # of host think time and PCIe pacing that replay does not reproduce.
    by_label = {label: speedup for label, _r, _p, speedup in rows}
    assert by_label["DMA"] > 1.3
    speedups = [s for *_x, s in rows]
    assert sum(speedups) / len(speedups) > 1.05


# ----------------------------------------------------------------------
# Time-warp replay throughput (BENCH_replay.json)
# ----------------------------------------------------------------------

WARP_ROUNDS = 3
WARP_APPS = ("sha256", "dram_dma", "bnn")


def _timed_replay(spec, trace, time_warp):
    """Best-of-N wall-clock cycles/sec for one replay configuration."""
    best, metrics = 0.0, None
    for _ in range(WARP_ROUNDS):
        t0 = perf_counter()
        metrics = replay_run(spec, trace, time_warp=time_warp)
        best = max(best, metrics.cycles / (perf_counter() - t0))
    return best, metrics


def test_time_warp_throughput(emit):
    """Per-cycle vs quiescent-gap-skipping replay on real recordings.

    The sparse sha256 trace — mostly on-fabric compute gaps between five
    monitored interfaces — is the acceptance case: the warp must deliver
    at least 3x replayed cycles/second over stepping every cycle.
    """
    report = {}
    lines = [f"Replay throughput (cycles/second, best of {WARP_ROUNDS})"]
    for app in WARP_APPS:
        spec = get_app(app)
        recording = record_run(spec, bench_config(VidiConfig.r2), seed=100)
        trace = recording.result["trace"]
        percycle_cps, percycle = _timed_replay(spec, trace, time_warp=False)
        warp_cps, warped = _timed_replay(spec, trace, time_warp=True)
        assert warped.cycles == percycle.cycles
        assert bytes(warped.result["validation"].body) == \
            bytes(percycle.result["validation"].body)
        sim = warped.result["deployment"].sim
        skip_ratio = sim.warped_cycles / warped.cycles
        speedup = warp_cps / percycle_cps
        report[app] = {
            "config": "r2(five-interface)",
            "cycles": warped.cycles,
            "percycle_cycles_per_sec": round(percycle_cps),
            "timewarp_cycles_per_sec": round(warp_cps),
            "skip_ratio": round(skip_ratio, 3),
            "speedup": round(speedup, 2),
        }
        lines.append(
            f"  {spec.label:<12} per-cycle {percycle_cps:>10,.0f}   "
            f"time-warp {warp_cps:>10,.0f}   skip {skip_ratio:5.1%}   "
            f"speedup {speedup:.2f}x")

    # Sharded replay: split the DMA trace at harvested checkpoints and
    # report how much of the sequential critical path the shards remove.
    spec = get_app("dram_dma")
    metrics, checkpoints = record_with_checkpoints(spec, seed=100)
    trace = metrics.result["trace"]
    sequential = replay_run(spec, trace)
    sharded = replay_sharded(spec, trace, checkpoints, segments=3, jobs=3)
    assert bytes(sharded.validation.body) == \
        bytes(sequential.result["validation"].body)
    shard_speedup = sequential.cycles / max(sharded.critical_path_cycles, 1)
    report["sharded_dram_dma"] = {
        "config": "r2(five-interface), 3 segments",
        "sequential_cycles": sequential.cycles,
        "critical_path_cycles": sharded.critical_path_cycles,
        "checkpoints_harvested": len(checkpoints),
        "speedup": round(shard_speedup, 2),
    }
    lines.append(
        f"  DMA sharded  sequential {sequential.cycles:>7,} cycles   "
        f"critical path {sharded.critical_path_cycles:>7,}   "
        f"speedup {shard_speedup:.2f}x")

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_replay.json").write_text(
        json.dumps(report, indent=2) + "\n")
    lines.append("[also saved to benchmarks/results/BENCH_replay.json]")
    emit("replay_throughput", "\n".join(lines))

    # Acceptance: >= 3x replayed cycles/sec on the sparse sha256 trace.
    assert report["sha256"]["speedup"] >= 3.0, report["sha256"]
