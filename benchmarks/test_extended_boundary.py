"""Extension bench — §4.1 boundary customisation end to end.

Beyond the paper's Fig. 7 sweep, the reproduction's boundary is
customisable at run time: the DDR4 bus and a pair of AXI-Stream ports can
join the monitored set. This bench records and replays both extension
applications and extends the resource-scaling story past 3056 bits,
asserting the same linearity holds.
"""

from repro.analysis.tables import render_table
from repro.apps import dram_dma_axi, packet_filter
from repro.core import VidiConfig, compare_traces
from repro.platform import F1Deployment
from repro.resources.model import shim_resources

DDR_CONFIG = ("sda", "ocl", "bar1", "pcim", "pcis", "ddr4")
AXIS_CONFIG = ("sda", "ocl", "bar1", "pcim", "pcis", "axis_in", "axis_out")
FULL_CONFIG = ("sda", "ocl", "bar1", "pcim", "pcis", "ddr4", "axis_in",
               "axis_out")


def run_extended():
    outcomes = {}
    # DDR4-monitored DMA variant.
    acc_factory, host_factory = dram_dma_axi.make()
    deployment = F1Deployment("x1", acc_factory,
                              VidiConfig.r2(interfaces=DDR_CONFIG), seed=4)
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=4, scale=1.0))
    deployment.run_to_completion(max_cycles=2_000_000)
    trace = deployment.recorded_trace()
    replay = F1Deployment("x1r", acc_factory,
                          VidiConfig.r3(interfaces=DDR_CONFIG),
                          replay_trace=trace)
    replay.run_replay(max_cycles=2_000_000)
    outcomes["ddr4"] = {
        "ok": result["ok"],
        "channels": trace.table.n,
        "trace_bytes": trace.size_bytes,
        "clean": compare_traces(trace, replay.recorded_trace()).clean,
    }
    # Streaming dataplane.
    acc_factory, host_factory = packet_filter.make()
    deployment = F1Deployment("x2", acc_factory,
                              VidiConfig.r2(interfaces=AXIS_CONFIG), seed=4)
    deployment.stream_driver.load_packets(packet_filter.workload(4))
    result = {}
    deployment.cpu.add_thread(host_factory(result, seed=4))
    deployment.run_to_completion(max_cycles=2_000_000)
    trace = deployment.recorded_trace()
    replay = F1Deployment("x2r", acc_factory,
                          VidiConfig.r3(interfaces=AXIS_CONFIG),
                          replay_trace=trace)
    replay.run_replay(max_cycles=2_000_000)
    outcomes["axis"] = {
        "ok": result["ok"],
        "channels": trace.table.n,
        "trace_bytes": trace.size_bytes,
        "clean": compare_traces(trace, replay.recorded_trace()).clean,
    }
    # Resource scaling past the paper's 3056 bits.
    sweep = []
    for combo in (("sda", "ocl", "bar1", "pcim", "pcis"), DDR_CONFIG,
                  AXIS_CONFIG, FULL_CONFIG):
        report = shim_resources(interfaces=combo)
        sweep.append((len(combo), report.monitored_bits, report.lut_pct,
                      report.ff_pct, report.bram_pct))
    outcomes["sweep"] = sweep
    return outcomes


def test_extended_boundary(benchmark, emit):
    outcomes = benchmark.pedantic(run_extended, iterations=1, rounds=1)
    rows = [
        ["ddr4 DMA variant", outcomes["ddr4"]["channels"],
         outcomes["ddr4"]["trace_bytes"],
         "clean" if outcomes["ddr4"]["clean"] else "DIVERGED"],
        ["axis packet filter", outcomes["axis"]["channels"],
         outcomes["axis"]["trace_bytes"],
         "clean" if outcomes["axis"]["clean"] else "DIVERGED"],
    ]
    table = render_table(
        "§4.1 extension: customised record/replay boundaries",
        ["Deployment", "Channels", "Trace B", "Replay"], rows)
    sweep = render_table(
        "resource scaling beyond Fig. 7 (5534 bits max)",
        ["Interfaces", "Bits", "LUT%", "FF%", "BRAM%"],
        [[n, bits, f"{lut:.2f}", f"{ff:.2f}", f"{bram:.2f}"]
         for n, bits, lut, ff, bram in outcomes["sweep"]])
    emit("extended_boundary", table + "\n\n" + sweep)
    assert outcomes["ddr4"]["ok"] and outcomes["ddr4"]["clean"]
    assert outcomes["axis"]["ok"] and outcomes["axis"]["clean"]
    # Linearity continues past the paper's range.
    sweep_rows = outcomes["sweep"]
    for (a, b) in zip(sweep_rows, sweep_rows[1:]):
        if b[1] > a[1]:
            assert b[2] > a[2]   # LUT grows with monitored bits
