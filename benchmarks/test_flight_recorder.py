"""Flight recorder: trace-size reduction and record-path overhead gates.

The always-on recording argument (rr's deployability case, ROADMAP item 1)
only holds if the bounded record path is cheap on both axes the paper
cares about: *storage* — the dedup + DEFLATE pipeline must shrink the
external trace footprint enough that a ring of a few thousand storage
words covers a useful replay window — and *time* — framing, compression
and eviction are host-side bookkeeping that must not slow the recorded
execution down. Both are enforced here (BENCH_flightrec.json):

* compression ratio >= 2x on the DMA-heavy app (wide payloads with
  repeated descriptors/status words: the deployment target's profile);
* flight record wall-clock <= 1.15x a plain v2 recording of the same
  run, best-of-N, measuring deployment build + run only (serializing the
  retained ring to a container is an offline/post-crash step).
"""

import json
from time import perf_counter

from conftest import RESULTS_DIR, bench_runs, emit  # noqa: F401

from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, build_record_deployment, \
    record_run

RATIO_APPS = ("dram_dma", "sssp", "rendering3d")
GATE_APP = "dram_dma"
RATIO_FLOOR = 2.0
OVERHEAD_CEILING = 1.15


def _ratio_row(app: str) -> dict:
    metrics = record_run(
        get_app(app), bench_config(VidiConfig.r2, flight_recorder=True),
        seed=0)
    flight = metrics.result["flight"]
    dedup = flight["dedup"]
    hits = dedup["hits"]
    refs = hits + dedup["inserts"]
    return {
        "flat_bytes": flight["flat_bytes"],
        "stream_bytes": flight["stream_bytes"],
        "frame_bytes": flight["frame_bytes"],
        "dedup_ratio": round(flight["dedup_ratio"], 3),
        "compression_ratio": round(flight["compression_ratio"], 3),
        "dedup_hit_rate": round(hits / refs, 3) if refs else 0.0,
        "anchors": flight["anchors"],
    }


def _best_record_seconds(config, spec, rounds: int) -> float:
    """Best-of-N wall clock for deployment build + recorded run."""
    best = float("inf")
    for _ in range(rounds):
        start = perf_counter()
        deployment, _result, _cfg = build_record_deployment(
            spec, config, seed=100)
        deployment.run_to_completion(max_cycles=4_000_000)
        best = min(best, perf_counter() - start)
    return best


def test_flight_recorder_gates(emit):
    report = {"ratio": {}, "overhead": {}}
    lines = ["Flight recorder: trace-size reduction and record overhead"]

    for app in RATIO_APPS:
        row = _ratio_row(app)
        report["ratio"][app] = row
        lines.append(
            f"  {app:<14} flat {row['flat_bytes']:>9,} B -> framed "
            f"{row['frame_bytes']:>9,} B   dedup {row['dedup_ratio']:.2f}x "
            f"(hit {row['dedup_hit_rate']:.0%})   "
            f"total {row['compression_ratio']:.2f}x")

    rounds = bench_runs(4)
    spec = get_app(GATE_APP)
    plain = _best_record_seconds(bench_config(VidiConfig.r2), spec, rounds)
    flight = _best_record_seconds(
        bench_config(VidiConfig.r2, flight_recorder=True), spec, rounds)
    overhead = flight / plain
    report["overhead"] = {
        "app": GATE_APP,
        "rounds": rounds,
        "plain_record_ms": round(plain * 1000, 1),
        "flight_record_ms": round(flight * 1000, 1),
        "overhead": round(overhead, 3),
    }
    lines.append(
        f"  {GATE_APP} record: plain {plain * 1000:.1f} ms   flight "
        f"{flight * 1000:.1f} ms   overhead {overhead:.3f}x "
        f"(best of {rounds})")

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_flightrec.json").write_text(
        json.dumps(report, indent=2) + "\n")
    lines.append("[also saved to benchmarks/results/BENCH_flightrec.json]")
    emit("flight_recorder", "\n".join(lines))

    gate = report["ratio"][GATE_APP]
    assert gate["compression_ratio"] >= RATIO_FLOOR, gate
    assert overhead <= OVERHEAD_CEILING, report["overhead"]
