"""E1a — Table 1: recording runtime overhead (R2 vs R1) for all ten apps.

Expected shape (paper): most applications under ~2% mean overhead with
noise-dominated small values; the I/O-bound pair stands out (DMA 5.93%,
SpamF 10.54%, the maximum). Our simulated platform reproduces the ordering
SpamF > DMA >> compute-bound apps ~ 0%.
"""

from conftest import bench_runs

from repro.apps.registry import get_app
from repro.harness.experiments import render_table1, run_table1


def test_table1_overhead_all_apps(benchmark, emit):
    """Regenerate Table 1's ET/overhead columns for every application."""
    rows = benchmark.pedantic(
        run_table1, kwargs={"runs": bench_runs()}, iterations=1, rounds=1)
    emit("table1", render_table1(rows))
    by_key = {row.app.key: row for row in rows}
    # Shape assertions: the I/O-bound applications pay the recording cost...
    assert by_key["spam_filter"].overhead_pct > 3.0
    # ...and compute-bound applications are in the noise (paper: <2%).
    for key in ("sha256", "mobilenet", "optical_flow", "bnn",
                "digit_recognition"):
        assert abs(by_key[key].overhead_pct) < 3.0, key
    # SpamF is the most expensive to record, as in the paper.
    assert by_key["spam_filter"].overhead_pct >= max(
        r.overhead_pct for r in rows if r.app.key != "spam_filter") - 12.0


def test_single_app_record_run_benchmark(benchmark):
    """pytest-benchmark timing of one representative R2 recording run."""
    from repro.core import VidiConfig
    from repro.harness.runner import bench_config, record_run

    spec = get_app("sha256")

    def once():
        return record_run(spec, bench_config(VidiConfig.r2), seed=100)

    metrics = benchmark.pedantic(once, iterations=1, rounds=3)
    assert metrics.trace_bytes > 0
