"""E5 — §5.2 debugging case study: record the buggy echo server, replay it.

Expected shape (paper): the delayed-start race makes the buggy frame FIFO
drop data on hardware; the Vidi trace replays the exact same loss
deterministically, enabling LossCheck-style diagnosis offline.
"""

from repro.harness.experiments import render_case_debugging, run_case_debugging


def test_debugging_case_study(benchmark, emit):
    outcome = benchmark.pedantic(run_case_debugging, iterations=1, rounds=1)
    emit("case_debugging", render_case_debugging(outcome))
    assert outcome["bug_observed"]
    assert outcome["dropped_on_hardware"] > 0
    assert outcome["loss_reproduced"]
