"""E7 — §6: why physical-timestamp tracing cannot keep up.

Expected shape (paper): tracing the largest AXI channel (593 bits at
250 MHz) needs 18.5 GB/s against 5.5 GB/s of PCIe drain, so 43 MB of BRAM
absorbs only ~3.3 ms of burst; and at the paper's runtimes, 9+/10
benchmarks produce cycle-accurate traces far beyond the on-chip buffer.
Vidi instead back-pressures and never loses events (asserted in the
monitor property tests).
"""

from repro.harness.experiments import render_panopticon, run_panopticon


def test_panopticon_envelope(benchmark, emit):
    envelope, rows = benchmark.pedantic(run_panopticon, iterations=1, rounds=1)
    emit("panopticon", render_panopticon(envelope, rows))
    assert abs(envelope.peak_bandwidth_gbs - 18.5) < 0.1
    assert abs(envelope.seconds_to_loss - 3.3e-3) < 0.2e-3
    assert envelope.loses_data
    # At the paper's runtimes, at least 9/10 cycle-accurate traces exceed
    # the 43 MB BRAM buffer.
    assert sum(r.exceeds_bram for r in rows) >= 9
