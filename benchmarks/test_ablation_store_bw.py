"""Ablation A3 — trace-store bandwidth sweep (the §3.3/§6 design point).

Vidi tolerates an arbitrarily slow trace store because back-pressure only
delays transactions; the cost is runtime. Sweeping the store's drain
bandwidth on the most I/O-bound benchmark maps that trade-off: recording
time falls monotonically toward the native runtime as bandwidth grows,
and no events are ever lost at any point of the sweep.
"""

from repro.analysis.metrics import overhead_pct
from repro.analysis.tables import render_table
from repro.apps.registry import get_app
from repro.core import VidiConfig
from repro.harness.runner import bench_config, record_run

BANDWIDTHS = (2.0, 5.0, 11.0, 22.0, 44.0)


def run_sweep(seed: int = 21):
    spec = get_app("spam_filter")
    native = record_run(spec, bench_config(VidiConfig.r1), seed=seed)
    points = []
    for bandwidth in BANDWIDTHS:
        r2 = record_run(
            spec, bench_config(VidiConfig.r2, store_bandwidth=bandwidth),
            seed=seed)
        points.append({
            "bandwidth": bandwidth,
            "cycles": r2.cycles,
            "overhead_pct": overhead_pct(native.cycles, r2.cycles),
            "trace_bytes": r2.trace_bytes,
            "transactions": r2.monitored_transactions,
            "stall_cycles": r2.store_stall_cycles,
        })
    return native.cycles, points


def test_ablation_store_bandwidth(benchmark, emit):
    native_cycles, points = benchmark.pedantic(run_sweep, iterations=1,
                                               rounds=1)
    emit("ablation_store_bw", render_table(
        f"Ablation A3: SpamF recording vs store bandwidth "
        f"(native: {native_cycles} cycles)",
        ["Store B/cycle", "Cycles", "Overhead %", "Trace bytes"],
        [[p["bandwidth"], p["cycles"], f"{p['overhead_pct']:.2f}",
          p["trace_bytes"]] for p in points]))
    # Recording time is monotonically non-increasing in store bandwidth.
    cycles = [p["cycles"] for p in points]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    # A starved store hurts a lot; an ample one approaches native speed.
    assert points[0]["overhead_pct"] > points[-1]["overhead_pct"]
    assert points[-1]["overhead_pct"] < 25.0
    # Slow stores delay, they never drop (§3.3): every sweep point records
    # the identical transaction set (byte counts differ slightly because
    # back-pressure regroups events into different cycle packets).
    assert len({p["transactions"] for p in points}) == 1
