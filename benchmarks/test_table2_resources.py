"""E2 — Table 2: on-FPGA resource overhead per application.

Expected shape (paper): overhead is essentially application-independent
(the shim is the same RTL; only Vivado noise varies): LUT ~5.6-6.2%,
FF ~3.8% (DMA 4.34% with its extra interconnect port), BRAM constant at
6.92%. All under 7%.
"""

from repro.harness.experiments import render_table2, run_table2


def test_table2_resource_overhead(benchmark, emit):
    rows = benchmark.pedantic(run_table2, iterations=1, rounds=1)
    emit("table2", render_table2(rows))
    for row in rows:
        # The headline claim: every resource overhead is below 7%.
        assert row.lut_pct < 7.0
        assert row.ff_pct < 7.0
        assert row.bram_pct < 7.0
        # And each is close to the paper's measurement for that app.
        assert abs(row.lut_pct - row.app.paper.lut_pct) < 0.4
        assert abs(row.ff_pct - row.app.paper.ff_pct) < 0.4
        assert abs(row.bram_pct - row.app.paper.bram_pct) < 0.2
    # DMA is the most expensive row (extra interconnect port), per paper.
    dma = next(r for r in rows if r.app.key == "dram_dma")
    assert dma.lut_pct == max(r.lut_pct for r in rows)
    assert dma.ff_pct == max(r.ff_pct for r in rows)
    # BRAM is constant across applications.
    assert len({round(r.bram_pct, 4) for r in rows}) == 1
