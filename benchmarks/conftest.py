"""Shared benchmark plumbing.

Every benchmark regenerates one paper artefact (a table or figure) and
both prints it and writes it to ``benchmarks/results/<name>.txt``, so the
paper-vs-measured comparison survives the run. ``REPRO_BENCH_RUNS``
controls the per-configuration sample count of the overhead experiments
(default 3; the paper used 10).
"""

import json
import os
import sys
import time
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"
# Same filename the daemon's store uses, so `vidi results --data-dir
# benchmarks/results --kind bench` queries the history with no extra flags.
HISTORY_STORE = RESULTS_DIR / "results.vrs"


def bench_runs(default: int = 3) -> int:
    """Sample count for overhead measurements (paper: 10 runs)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


@pytest.fixture
def emit(capsys):
    """Print an artefact (visible with -s) and persist it under results/."""
    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")
    return _emit


@pytest.fixture(scope="session", autouse=True)
def _persist_bench_history():
    """Append every BENCH_*.json this session refreshed to the history store.

    ``BENCH_kernel.json`` and friends are point-in-time snapshots — each
    ``make check`` overwrites the last run's numbers. The results store's
    bench-history table (``benchmarks/results/results.vrs``, same
    CRC-framed store the trace-service daemon uses) accretes instead, so
    the perf trajectory across runs stays queryable::

        vidi results --data-dir benchmarks/results --kind bench

    Best-effort by design: history bookkeeping must never fail a bench.
    """
    started = time.time()
    yield
    try:
        from repro.service.results import record_bench

        for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
            if path.stat().st_mtime < started:
                continue   # stale snapshot from an earlier session
            try:
                payload = json.loads(path.read_text())
            except ValueError:
                continue
            record_bench(path.stem[len("BENCH_"):], payload, HISTORY_STORE)
    except Exception:
        pass
