"""Shared benchmark plumbing.

Every benchmark regenerates one paper artefact (a table or figure) and
both prints it and writes it to ``benchmarks/results/<name>.txt``, so the
paper-vs-measured comparison survives the run. ``REPRO_BENCH_RUNS``
controls the per-configuration sample count of the overhead experiments
(default 3; the paper used 10).
"""

import os
import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_runs(default: int = 3) -> int:
    """Sample count for overhead measurements (paper: 10 runs)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


@pytest.fixture
def emit(capsys):
    """Print an artefact (visible with -s) and persist it under results/."""
    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")
    return _emit
